package rules

import (
	"testing"

	"autoresched/internal/sysinfo"
)

var probes = sysinfo.StandardProbes()

// Snapshots modelled on the five workstations of Table 2.
func table2Snapshots() map[string]sysinfo.Snapshot {
	return map[string]sysinfo.Snapshot{
		// Source after the additional tasks are loaded.
		"ws1": {Host: "ws1", Load1: 2.6, NumProcs: 60},
		// Busy communicating with ws5 at ~7 MB/s, CPU load below threshold.
		"ws2": {Host: "ws2", Load1: 0.97, NumProcs: 40, NetSentBps: 7.2e6, NetRecvBps: 0.3e6},
		// CPU workload of 2.52.
		"ws3": {Host: "ws3", Load1: 2.52, NumProcs: 45},
		// Free.
		"ws4": {Host: "ws4", Load1: 0.05, NumProcs: 30},
		// The other end of the communication.
		"ws5": {Host: "ws5", Load1: 0.4, NumProcs: 35, NetSentBps: 0.3e6, NetRecvBps: 7.2e6},
	}
}

func TestPolicy1NeverMigrates(t *testing.T) {
	p := Policy1()
	for _, snap := range table2Snapshots() {
		ok, err := p.ShouldMigrate(probes, snap)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("policy1 fired on %s", snap.Host)
		}
	}
}

func TestPolicy2TriggersOnLoadedSource(t *testing.T) {
	p := Policy2()
	snaps := table2Snapshots()
	ok, err := p.ShouldMigrate(probes, snaps["ws1"])
	if err != nil || !ok {
		t.Fatalf("policy2 on loaded source = %v, %v; want true", ok, err)
	}
	// An unloaded host does not trigger.
	ok, err = p.ShouldMigrate(probes, snaps["ws4"])
	if err != nil || ok {
		t.Fatalf("policy2 on free host = %v, %v; want false", ok, err)
	}
	// Process-count trigger alone suffices (any-of).
	ok, err = p.ShouldMigrate(probes, sysinfo.Snapshot{Load1: 0.1, NumProcs: 200})
	if err != nil || !ok {
		t.Fatalf("policy2 on many-procs host = %v, %v; want true", ok, err)
	}
}

// TestPolicy2AcceptsCommunicatingHost reproduces the Table 2 mistake the
// paper demonstrates: blind to communication, policy 2 accepts ws2 (load
// 0.97 < 1) even though it is saturating its link.
func TestPolicy2AcceptsCommunicatingHost(t *testing.T) {
	p := Policy2()
	snaps := table2Snapshots()
	for _, host := range []string{"ws2", "ws4"} {
		ok, err := p.DestinationOK(probes, snaps[host])
		if err != nil || !ok {
			t.Fatalf("policy2 destination %s = %v, %v; want true", host, ok, err)
		}
	}
	// ws3's CPU load disqualifies it under both policies.
	ok, err := p.DestinationOK(probes, snaps["ws3"])
	if err != nil || ok {
		t.Fatalf("policy2 destination ws3 = %v, %v; want false", ok, err)
	}
}

// TestPolicy3RejectsCommunicatingHost: with communication awareness, ws2 is
// rejected (7 MB/s > 3 MB/s) and ws4 remains eligible.
func TestPolicy3RejectsCommunicatingHost(t *testing.T) {
	p := Policy3()
	snaps := table2Snapshots()
	ok, err := p.DestinationOK(probes, snaps["ws2"])
	if err != nil || ok {
		t.Fatalf("policy3 destination ws2 = %v, %v; want false", ok, err)
	}
	ok, err = p.DestinationOK(probes, snaps["ws4"])
	if err != nil || !ok {
		t.Fatalf("policy3 destination ws4 = %v, %v; want true", ok, err)
	}
}

func TestPolicy3SourcePrecondition(t *testing.T) {
	p := Policy3()
	// Overloaded but communicating heavily: not worth migrating.
	snap := sysinfo.Snapshot{Load1: 5, NumProcs: 300, NetSentBps: 8e6}
	ok, err := p.ShouldMigrate(probes, snap)
	if err != nil || ok {
		t.Fatalf("policy3 on communicating source = %v, %v; want false", ok, err)
	}
	snap.NetSentBps = 1e6
	ok, err = p.ShouldMigrate(probes, snap)
	if err != nil || !ok {
		t.Fatalf("policy3 on quiet source = %v, %v; want true", ok, err)
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{Script: "loadAvg.sh", Param: "1", Op: OpGreater, Threshold: 2}
	if got := c.String(); got != "loadAvg(1) > 2" {
		t.Fatalf("String() = %q", got)
	}
	c.Desc = "custom"
	if c.String() != "custom" {
		t.Fatalf("String() = %q, want custom", c.String())
	}
}

func TestConditionErrors(t *testing.T) {
	c := Condition{Script: "missing.sh", Op: OpGreater, Threshold: 1}
	if _, err := c.Holds(probes, sysinfo.Snapshot{}); err == nil {
		t.Fatal("missing probe not reported")
	}
	p := &MigrationPolicy{Migrate: true, Trigger: []Condition{c}}
	if _, err := p.ShouldMigrate(probes, sysinfo.Snapshot{}); err == nil {
		t.Fatal("trigger error not propagated")
	}
	p = &MigrationPolicy{Migrate: true, SourcePrecond: []Condition{c}}
	if _, err := p.ShouldMigrate(probes, sysinfo.Snapshot{}); err == nil {
		t.Fatal("precondition error not propagated")
	}
	p = &MigrationPolicy{Migrate: true, Destination: []Condition{c}}
	if _, err := p.DestinationOK(probes, sysinfo.Snapshot{}); err == nil {
		t.Fatal("destination error not propagated")
	}
}

func TestEmptyTriggerMeansAlways(t *testing.T) {
	p := &MigrationPolicy{Name: "always", Migrate: true}
	ok, err := p.ShouldMigrate(probes, sysinfo.Snapshot{})
	if err != nil || !ok {
		t.Fatalf("empty trigger = %v, %v; want true", ok, err)
	}
	ok, err = p.DestinationOK(probes, sysinfo.Snapshot{})
	if err != nil || !ok {
		t.Fatalf("empty destination = %v, %v; want true", ok, err)
	}
}

func TestOpCompare(t *testing.T) {
	cases := []struct {
		op        Op
		v, th     float64
		want      bool
		wantFlip  bool
		flipValue float64
	}{
		{OpLess, 1, 2, true, false, 3},
		{OpLessEqual, 2, 2, true, false, 3},
		{OpGreater, 3, 2, true, false, 1},
		{OpGreaterEqual, 2, 2, true, false, 1},
	}
	for _, c := range cases {
		if got := c.op.compare(c.v, c.th); got != c.want {
			t.Errorf("%v %s %v = %v", c.v, c.op, c.th, got)
		}
		if got := c.op.compare(c.flipValue, c.th); got != c.wantFlip {
			t.Errorf("%v %s %v = %v", c.flipValue, c.op, c.th, got)
		}
	}
	if Op("~").compare(1, 2) {
		t.Error("unknown op compared true")
	}
	if _, err := ParseOp("≥"); err == nil {
		t.Error("ParseOp accepted unicode op")
	}
	for _, s := range []string{"<", "<=", ">", ">="} {
		if _, err := ParseOp(" " + s + " "); err != nil {
			t.Errorf("ParseOp(%q): %v", s, err)
		}
	}
}
