package rules

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Migration policies are configuration, like the rule files: the pl_* format
// mirrors Figure 3/4's rl_* format. A condition is written
//
//	script(param) OP threshold        e.g.  loadAvg.sh(1) > 2
//	script OP threshold               e.g.  numProcs.sh > 150
//
// and a policy file reads
//
//	pl_name: policy3
//	pl_desc: load plus communication awareness
//	pl_migrate: true
//	pl_trigger: loadAvg.sh(1) > 2
//	pl_trigger: numProcs.sh > 150
//	pl_source: netFlow.sh(max) <= 5
//	pl_dest: loadAvg.sh(1) < 1
//	pl_dest: numProcs.sh < 100
//	pl_dest: netFlow.sh(max) <= 3
//	pl_scheduler: leastloaded
//
// Triggers are any-of; source preconditions and destination conditions are
// all-of (see MigrationPolicy). pl_scheduler optionally names the placement
// scheduler; the default is first fit.

// ParseCondition parses one "script(param) OP threshold" condition.
func ParseCondition(s string) (Condition, error) {
	var opIdx int
	var op Op
	// Longest operators first so "<=" is not read as "<".
	for _, cand := range []Op{OpLessEqual, OpGreaterEqual, OpLess, OpGreater} {
		if i := strings.Index(s, string(cand)); i >= 0 {
			opIdx, op = i, cand
			break
		}
	}
	if op == "" {
		return Condition{}, fmt.Errorf("rules: condition %q has no comparison operator", s)
	}
	left := strings.TrimSpace(s[:opIdx])
	right := strings.TrimSpace(s[opIdx+len(op):])
	threshold, err := strconv.ParseFloat(right, 64)
	if err != nil {
		return Condition{}, fmt.Errorf("rules: condition %q threshold: %w", s, err)
	}
	cond := Condition{Op: op, Threshold: threshold}
	if open := strings.IndexByte(left, '('); open >= 0 {
		if !strings.HasSuffix(left, ")") {
			return Condition{}, fmt.Errorf("rules: condition %q has unbalanced parentheses", s)
		}
		cond.Script = strings.TrimSpace(left[:open])
		cond.Param = strings.TrimSpace(left[open+1 : len(left)-1])
	} else {
		cond.Script = left
	}
	if cond.Script == "" {
		return Condition{}, fmt.Errorf("rules: condition %q has no script", s)
	}
	return cond, nil
}

// ParsePolicies reads migration policies in the pl_* format. A new pl_name
// line starts a new policy; '#' lines are comments.
func ParsePolicies(r io.Reader) ([]*MigrationPolicy, error) {
	var (
		out  []*MigrationPolicy
		cur  *MigrationPolicy
		line int
	)
	flush := func() error {
		if cur == nil {
			return nil
		}
		if cur.Name == "" {
			return fmt.Errorf("rules: policy without a name")
		}
		out = append(out, cur)
		cur = nil
		return nil
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, value, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("rules: line %d: missing ':' in %q", line, text)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if key == "pl_name" {
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &MigrationPolicy{Name: value, Migrate: true}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("rules: line %d: %q before any pl_name", line, key)
		}
		var err error
		switch key {
		case "pl_desc":
			// Informational only.
		case "pl_migrate":
			cur.Migrate, err = strconv.ParseBool(value)
		case "pl_trigger":
			err = appendCond(&cur.Trigger, value)
		case "pl_source":
			err = appendCond(&cur.SourcePrecond, value)
		case "pl_dest":
			err = appendCond(&cur.Destination, value)
		case "pl_scheduler":
			cur.Scheduler = value
		default:
			if !strings.HasPrefix(key, "pl_") {
				err = fmt.Errorf("unknown key %q", key)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParsePolicyFile reads a policy file from disk.
func ParsePolicyFile(path string) ([]*MigrationPolicy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParsePolicies(f)
}

func appendCond(dst *[]Condition, src string) error {
	cond, err := ParseCondition(src)
	if err != nil {
		return err
	}
	*dst = append(*dst, cond)
	return nil
}
