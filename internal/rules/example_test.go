package rules_test

import (
	"fmt"
	"strings"

	"autoresched/internal/rules"
	"autoresched/internal/sysinfo"
)

// ExampleParseRules parses the paper's Figure 3 processorStatus rule and
// classifies three CPU conditions with it.
func ExampleParseRules() {
	const ruleFile = `
rl_number: 1
rl_name: processorStatus
rl_type: simple
rl_script: processorStatus.sh
rl_desc: This rule determines the processor status i.e. the idle time.
rl_operator: <
rl_busy: 50
rl_overLd: 45
`
	engine := rules.NewEngine(nil)
	if _, err := engine.Load(strings.NewReader(ruleFile)); err != nil {
		panic(err)
	}
	for _, idle := range []float64{80, 47, 30} {
		state, err := engine.State(sysinfo.Snapshot{CPUIdlePct: idle})
		if err != nil {
			panic(err)
		}
		fmt.Printf("idle %.0f%% => %s\n", idle, state)
	}
	// Output:
	// idle 80% => free
	// idle 47% => busy
	// idle 30% => overloaded
}

// ExampleMigrationPolicy evaluates the Table 2 communication-aware policy
// against two candidate destinations.
func ExampleMigrationPolicy() {
	policy := rules.Policy3()
	probes := sysinfo.StandardProbes()

	communicating := sysinfo.Snapshot{Host: "ws2", Load1: 0.97, NetSentBps: 7.2e6}
	free := sysinfo.Snapshot{Host: "ws4", Load1: 0.05}

	for _, snap := range []sysinfo.Snapshot{communicating, free} {
		ok, err := policy.DestinationOK(probes, snap)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s acceptable: %v\n", snap.Host, ok)
	}
	// Output:
	// ws2 acceptable: false
	// ws4 acceptable: true
}
