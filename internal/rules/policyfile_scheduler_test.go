package rules

import (
	"strings"
	"testing"
)

func TestParsePolicySchedulerKey(t *testing.T) {
	src := `
pl_name: p1
pl_migrate: true
pl_trigger: loadAvg.sh(1) > 2
pl_scheduler: leastloaded

pl_name: p2
pl_migrate: true
pl_trigger: numProcs.sh > 150
`
	ps, err := ParsePolicies(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("parsed %d policies", len(ps))
	}
	if ps[0].Scheduler != "leastloaded" {
		t.Fatalf("p1 scheduler = %q, want leastloaded", ps[0].Scheduler)
	}
	if ps[1].Scheduler != "" {
		t.Fatalf("p2 scheduler = %q, want default (empty)", ps[1].Scheduler)
	}
}
