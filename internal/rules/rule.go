package rules

import (
	"fmt"
	"strings"

	"autoresched/internal/sysinfo"
)

// Type distinguishes simple rules (one probe, thresholds) from complex rules
// (an expression over other rules).
type Type int

const (
	// Simple rules fire one information-gathering script and compare its
	// value against the busy and overloaded thresholds (Figure 3).
	Simple Type = iota
	// Complex rules combine the grades of other rules through an
	// expression (Figure 4).
	Complex
)

// String returns the rl_type spelling.
func (t Type) String() string {
	if t == Complex {
		return "complex"
	}
	return "simple"
}

// Op is a threshold comparison operator (rl_operator).
type Op string

// Supported comparison operators.
const (
	OpLess         Op = "<"
	OpLessEqual    Op = "<="
	OpGreater      Op = ">"
	OpGreaterEqual Op = ">="
)

// ParseOp validates an rl_operator value.
func ParseOp(s string) (Op, error) {
	switch Op(strings.TrimSpace(s)) {
	case OpLess:
		return OpLess, nil
	case OpLessEqual:
		return OpLessEqual, nil
	case OpGreater:
		return OpGreater, nil
	case OpGreaterEqual:
		return OpGreaterEqual, nil
	default:
		return "", fmt.Errorf("rules: unknown operator %q", s)
	}
}

// compare applies the operator with value on the left: value OP threshold.
func (o Op) compare(value, threshold float64) bool {
	switch o {
	case OpLess:
		return value < threshold
	case OpLessEqual:
		return value <= threshold
	case OpGreater:
		return value > threshold
	case OpGreaterEqual:
		return value >= threshold
	default:
		return false
	}
}

// Rule is one entry of a rule file (Figures 3 and 4). For a Simple rule,
// Script names the probe to fire, Param is passed to it, and Busy/OverLd are
// the state thresholds. For a Complex rule, Script holds the combining
// expression and RuleNos lists the rules it fires, in order.
type Rule struct {
	Number   int
	Name     string
	Type     Type
	Script   string
	Desc     string
	Operator Op
	Param    string
	Busy     float64
	OverLd   float64
	RuleNos  []int

	expr *exprNode // parsed form of Script for complex rules
}

// Validate checks internal consistency and, for complex rules, parses the
// expression.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("rules: rule %d has no name", r.Number)
	}
	switch r.Type {
	case Simple:
		if r.Script == "" {
			return fmt.Errorf("rules: simple rule %q has no script", r.Name)
		}
		if _, err := ParseOp(string(r.Operator)); err != nil {
			return fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		return nil
	case Complex:
		if r.Script == "" {
			return fmt.Errorf("rules: complex rule %q has no expression", r.Name)
		}
		expr, err := parseExpr(r.Script)
		if err != nil {
			return fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		r.expr = expr
		return nil
	default:
		return fmt.Errorf("rules: rule %q has unknown type %d", r.Name, r.Type)
	}
}

// evalSimple evaluates a simple rule against a snapshot: the overloaded
// comparison is checked first, then busy, else the rule reports free —
// mirroring the paper's reading of Rule 1 (idle < 45 overloaded, < 50 busy,
// otherwise free).
func (r *Rule) evalSimple(probes *sysinfo.Probes, snap sysinfo.Snapshot) (Grade, error) {
	value, err := probes.Eval(r.Script, snap, r.Param)
	if err != nil {
		return GradeFree, fmt.Errorf("rules: rule %q: %w", r.Name, err)
	}
	switch {
	case r.Operator.compare(value, r.OverLd):
		return GradeOverloaded, nil
	case r.Operator.compare(value, r.Busy):
		return GradeBusy, nil
	default:
		return GradeFree, nil
	}
}
