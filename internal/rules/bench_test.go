package rules

import (
	"strings"
	"testing"

	"autoresched/internal/sysinfo"
)

var benchSnap = sysinfo.Snapshot{
	Load1: 2.5, CPUIdlePct: 42, MemAvailPct: 33, Sockets: 800, NumProcs: 120,
	NetSentBps: 4e6, NetRecvBps: 7e6,
}

// BenchmarkSimpleRuleEval measures one threshold rule evaluation — the
// monitor runs several of these every cycle.
func BenchmarkSimpleRuleEval(b *testing.B) {
	e := NewEngine(nil)
	if err := e.Add(&Rule{Number: 1, Name: "load", Type: Simple,
		Script: "loadAvg.sh", Param: "1", Operator: OpGreater, Busy: 1, OverLd: 2}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvalRule(1, benchSnap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComplexRuleEval measures the Figure 4 composite rule: four
// sub-rules plus the weighted-sum/& expression.
func BenchmarkComplexRuleEval(b *testing.B) {
	e := NewEngine(nil)
	if _, err := e.LoadFile("testdata/figure4.rules"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvalRule(5, benchSnap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleFileParse measures parsing the Figure 4 rule file.
func BenchmarkRuleFileParse(b *testing.B) {
	data := `rl_number: 5
rl_name: cmp_rule
rl_type: complex
rl_desc: A Complex Rule.
rl_ruleNo: 4 1 3 2
rl_script: ( 40% * r4 + 30% * r1 + 30% * r3 ) & r2
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRules(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyDecision measures one full Table 2 policy evaluation
// (trigger + preconditions) against a snapshot.
func BenchmarkPolicyDecision(b *testing.B) {
	p := Policy3()
	probes := sysinfo.StandardProbes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ShouldMigrate(probes, benchSnap); err != nil {
			b.Fatal(err)
		}
	}
}
