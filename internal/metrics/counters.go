package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Control-plane counter names. Components increment these on a shared
// Counters instance so a run's robustness behaviour — retries, reconnects,
// aborted migrations, checkpoint restores — is observable in one place
// (the chaos experiment's summary, cmd/repro output).
const (
	CtrProtoDropped       = "proto/msgs_dropped"
	CtrProtoDuplicated    = "proto/msgs_duplicated"
	CtrProtoDelayed       = "proto/msgs_delayed"
	CtrProtoRetries       = "proto/call_retries"
	CtrProtoReconnects    = "proto/reconnects"
	CtrProtoDeduped       = "proto/msgs_deduped"
	CtrStatusDropped      = "monitor/status_dropped"
	CtrStatusDuplicated   = "monitor/status_duplicated"
	CtrStatusDelayed      = "monitor/status_delayed"
	CtrReregisters        = "monitor/reregisters"
	CtrOrdersDeduped      = "commander/orders_deduped"
	CtrRegistryRestarts   = "registry/restarts"
	CtrRegistryRecoveries = "registry/recoveries"
	CtrStandbyPromotions  = "registry/standby_promotions"
	CtrPersistAppends     = "persist/appends"
	CtrPersistSnapshots   = "persist/snapshots"
	CtrProcResyncs        = "registry/proc_resyncs"
	CtrBatchFlushes       = "registry/batch_flushes"
	CtrBatchedReports     = "registry/batched_reports"
	CtrHealthReports      = "registry/health_reports"
	CtrMigrAborted        = "core/migrations_aborted"
	CtrMigrCommitted      = "core/migrations_committed"
	CtrCkptRestores       = "core/checkpoint_restores"
	CtrColdRestarts       = "core/cold_restarts"
	CtrResizeCommitted    = "malleable/resizes_committed"
	CtrResizeAborted      = "malleable/resizes_aborted"
	CtrRanksSpawned       = "malleable/ranks_spawned"
	CtrRanksRetired       = "malleable/ranks_retired"
	CtrJobsAdmitted       = "jobs/admitted"
	CtrJobsRequeued       = "jobs/requeued"
	CtrJobsShrunk         = "jobs/shrunk"
	CtrJobsMigrated       = "jobs/migrated"
	CtrJobsReservations   = "jobs/reservations_lost"
)

// Counters is a set of named monotonic counters, safe for concurrent use.
// Names are created on first Add/Get; Snapshot and Render report them in
// sorted order so output is deterministic regardless of increment order.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments a counter by delta. A nil receiver is a no-op, so
// components can count unconditionally without a configuration check.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increments a counter by one.
func (c *Counters) Inc(name string) {
	if c == nil {
		return
	}
	c.Add(name, 1)
}

// Get returns a counter's value (0 if never incremented or nil receiver).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return map[string]int64{}
	}
	out := make(map[string]int64)
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Render prints the non-zero counters, one per line, sorted by name.
func (c *Counters) Render() string {
	if c == nil {
		return ""
	}
	names := c.Names()
	width := 28
	for _, name := range names {
		if c.Get(name) != 0 && len(name) > width {
			width = len(name)
		}
	}
	var b strings.Builder
	for _, name := range names {
		if v := c.Get(name); v != 0 {
			fmt.Fprintf(&b, "%-*s %d\n", width, name, v)
		}
	}
	return b.String()
}
