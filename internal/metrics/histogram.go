package metrics

import (
	"math"
	"sort"
	"strconv"
	"sync"
)

// Histogram bucket geometry. Every histogram shares one fixed log-scale
// layout — five buckets per decade from 1 µs to 10,000 s — so histograms
// are mergeable by construction and a sample's bucket depends only on its
// value, never on what was observed before it. Quantiles are reported as
// bucket upper bounds, which makes them deterministic functions of the
// bucket counts: two runs whose samples land in the same buckets render
// byte-identical quantiles even when the raw values jitter.
const (
	bucketsPerDecade = 5
	histDecades      = 10   // 1e-6 s .. 1e4 s
	histMin          = 1e-6 // upper bound of the first bucket, seconds
	numBounds        = bucketsPerDecade*histDecades + 1
)

// histBounds holds the shared bucket upper bounds in seconds:
// bound[i] = 1e-6 * 10^(i/5), with the last regular bucket at 1e4 s.
// Samples above the last bound land in the overflow bucket.
var histBounds = func() [numBounds]float64 {
	var b [numBounds]float64
	for i := range b {
		b[i] = histMin * math.Pow(10, float64(i)/bucketsPerDecade)
	}
	// Pin the decade boundaries exactly so formatting never shows 9.999e2.
	for d := 0; d <= histDecades; d++ {
		b[min(d*bucketsPerDecade, numBounds-1)] = histMin * math.Pow(10, float64(d))
	}
	return b
}()

// bucketOf returns the index of the bucket a value lands in (the overflow
// bucket is numBounds).
func bucketOf(v float64) int {
	if v <= histBounds[0] {
		return 0
	}
	if v > histBounds[numBounds-1] {
		return numBounds
	}
	return sort.SearchFloat64s(histBounds[:], v) // smallest i with bound[i] >= v
}

// Histogram is a fixed-bucket log-scale latency histogram, safe for
// concurrent use. The zero value is NOT ready; create histograms through a
// Registry (or NewHistogram). All methods are nil-receiver safe so
// components can observe unconditionally when metrics are optional.
type Histogram struct {
	name string

	mu     sync.Mutex
	counts [numBounds + 1]uint64 // +1: overflow
	total  uint64
	sum    float64
}

// NewHistogram creates a detached histogram (tests; production code uses
// Registry.Histogram so the metric is exported).
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one sample, in seconds. Negative samples clamp to zero
// (they land in the first bucket); a nil receiver is a no-op.
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	i := bucketOf(seconds)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += seconds
	h.mu.Unlock()
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed samples in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Merge folds another histogram's counts into this one. Buckets are shared
// by construction, so merging is a plain per-bucket addition.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil {
		return
	}
	if o == nil {
		return
	}
	o.mu.Lock()
	counts, total, sum := o.counts, o.total, o.sum
	o.mu.Unlock()
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.total += total
	h.sum += sum
	h.mu.Unlock()
}

// Quantile returns the q-quantile (0..1] as the upper bound of the bucket
// holding that rank — a deterministic function of the bucket counts. An
// empty histogram returns 0; a quantile landing in the overflow bucket
// returns +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i >= numBounds {
				return math.Inf(1)
			}
			return histBounds[i]
		}
	}
	return math.Inf(1)
}

// DecadeQuantile returns the q-quantile coarsened to its decade upper bound
// (a power of ten seconds) — an order-of-magnitude summary for displays
// that only need the decade. Note that no quantization grid is cliff-free:
// a sample population whose values sit near a decade bound still flips
// between adjacent decades when the underlying timings jitter.
func (h *Histogram) DecadeQuantile(q float64) float64 {
	if h == nil {
		return 0
	}
	v := h.Quantile(q)
	if v == 0 || math.IsInf(v, 1) {
		return v
	}
	return decadeCeil(v)
}

// decadeCeil rounds a bucket bound up to its decade bound.
func decadeCeil(v float64) float64 {
	d := histMin
	for d < v*(1-1e-9) {
		d *= 10
	}
	return d
}

// FormatSeconds renders a bucket or decade bound compactly, rounded to
// three significant digits: "1ms", "1.58s", "631ms"; 0 renders "0" and
// +Inf renders ">1e4s".
func FormatSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsInf(v, 1):
		return ">1e4s"
	case v >= 1:
		return fmt3(v) + "s"
	case v >= 1e-3:
		return fmt3(v*1e3) + "ms"
	default:
		return fmt3(v*1e6) + "us"
	}
}

// fmt3 renders a positive display value to three significant digits;
// bucket bounds are irrational (10^(i/5)) and would otherwise print with
// sixteen digits. Unit scaling keeps values below 1000 except the topmost
// seconds decade, which is integral.
func fmt3(x float64) string {
	if x >= 1000 {
		return strconv.FormatFloat(math.Round(x), 'f', -1, 64)
	}
	return strconv.FormatFloat(x, 'g', 3, 64)
}

// BucketCount is one non-empty bucket in a snapshot.
type BucketCount struct {
	LE    float64 `json:"le"` // bucket upper bound in seconds; +Inf encodes as 1e308
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, JSON-friendly.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"` // non-empty buckets only
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.total,
		Sum:   h.sum,
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := math.Inf(1)
		if i < numBounds {
			le = histBounds[i]
		} else {
			le = 1e308 // JSON cannot carry +Inf
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: c})
	}
	// Inf sanitation for quantiles too.
	for _, p := range []*float64{&s.P50, &s.P95, &s.P99} {
		if math.IsInf(*p, 1) {
			*p = 1e308
		}
	}
	return s
}

// cumulativeBuckets returns (bound, cumulative count) pairs for every
// regular bucket plus the +Inf bucket — the Prometheus exposition shape.
func (h *Histogram) cumulativeBuckets() ([]float64, []uint64, uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds := make([]float64, 0, numBounds)
	cums := make([]uint64, 0, numBounds)
	var cum uint64
	for i := 0; i < numBounds; i++ {
		cum += h.counts[i]
		bounds = append(bounds, histBounds[i])
		cums = append(cums, cum)
	}
	return bounds, cums, h.total, h.sum
}

// Gauge is a single instantaneous value, safe for concurrent use. All
// methods are nil-receiver safe.
type Gauge struct {
	name string

	mu sync.Mutex
	v  float64
}

// NewGauge creates a detached gauge (tests; production code uses
// Registry.Gauge so the metric is exported).
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add offsets the gauge value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}
