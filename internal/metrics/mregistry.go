package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is the single home of a runtime's metrics: counters, gauges and
// histograms, created on first use and rendered in sorted name order so
// both exposition formats are deterministic. A nil *Registry is usable —
// every getter returns a nil metric whose methods no-op — so components
// take an optional registry and instrument unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters *Counters
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// AttachCounters folds an existing counter set into the registry's output.
// The registry does not copy: the counters keep living where they are and
// are read at render time.
func (r *Registry) AttachCounters(c *Counters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = c
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name)
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge(name)
		r.gauges[name] = g
	}
	return g
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Merge folds another registry's histograms and gauges into this one
// (histograms add bucket-wise, gauges take the other's value) and adds its
// attached counters into this registry's attached counter set when both
// exist. Experiments use this to accumulate per-scenario registries into
// one run-wide snapshot.
func (r *Registry) Merge(o *Registry) {
	if r == nil {
		return
	}
	if o == nil {
		return
	}
	o.mu.Lock()
	hists := make(map[string]*Histogram, len(o.hists))
	for k, v := range o.hists {
		hists[k] = v
	}
	gauges := make(map[string]*Gauge, len(o.gauges))
	for k, v := range o.gauges {
		gauges[k] = v
	}
	octr := o.counters
	o.mu.Unlock()

	for name, h := range hists {
		r.Histogram(name).Merge(h)
	}
	for name, g := range gauges {
		r.Gauge(name).Set(g.Value())
	}
	if octr != nil {
		r.mu.Lock()
		mine := r.counters
		r.mu.Unlock()
		if mine != nil {
			for name, v := range octr.Snapshot() {
				mine.Add(name, v)
			}
		}
	}
}

// Snapshot is a point-in-time JSON-friendly copy of every metric.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{}
	r.mu.Lock()
	ctr := r.counters
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()

	if ctr != nil {
		s.Counters = ctr.Snapshot()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for name, g := range gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for name, h := range hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON emits the snapshot as indented JSON. A nil registry writes
// the empty snapshot, keeping the output shape stable.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName sanitizes a metric name into the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus emits every metric in the Prometheus text exposition
// format (text/plain; version 0.0.4): counters with a _total suffix,
// gauges as-is, histograms with cumulative le buckets, _sum and _count.
// Metrics appear in sorted name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ctr := r.counters
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	if ctr != nil {
		snap := ctr.Snapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pn := promName(name) + "_total"
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, snap[name])
		}
	}
	{
		names := make([]string, 0, len(gauges))
		for name := range gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pn := promName(name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", pn, pn, gauges[name].Value())
		}
	}
	{
		names := make([]string, 0, len(hists))
		for name := range hists {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pn := promName(name)
			bounds, cums, total, sum := hists[name].cumulativeBuckets()
			fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
			for i, le := range bounds {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, formatLE(le), cums[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, total)
			fmt.Fprintf(&b, "%s_sum %g\n", pn, sum)
			fmt.Fprintf(&b, "%s_count %d\n", pn, total)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatLE renders a bucket bound the way Prometheus clients expect.
func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
