package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"autoresched/internal/vclock"
)

func TestRecordAndSeries(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := NewRecorder(clock)
	r.Record("load", 0.25)
	clock.Advance(10 * time.Second)
	r.Record("load", 0.30)
	s := r.Series("load")
	if len(s.Points) != 2 || s.Points[0].V != 0.25 || s.Points[1].V != 0.30 {
		t.Fatalf("series = %+v", s)
	}
	if !s.Points[1].T.Equal(vclock.Epoch.Add(10 * time.Second)) {
		t.Fatalf("timestamp = %v", s.Points[1].T)
	}
	if got := r.Series("ghost"); len(got.Points) != 0 {
		t.Fatal("unknown series non-empty")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "load" {
		t.Fatalf("names = %v", names)
	}
	// Returned series is a copy.
	s.Points[0].V = 999
	if r.Series("load").Points[0].V == 999 {
		t.Fatal("Series returned aliased points")
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "x", Points: []Point{
		{T: vclock.Epoch, V: 1},
		{T: vclock.Epoch.Add(time.Second), V: 3},
		{T: vclock.Epoch.Add(2 * time.Second), V: 2},
	}}
	if s.Mean() != 2 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 3 {
		t.Fatalf("max = %v", s.Max())
	}
	empty := &Series{}
	if empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatal("empty series stats nonzero")
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("min quantile = %v", got)
	}
	if got := s.Quantile(1); got != 3 {
		t.Fatalf("max quantile = %v", got)
	}
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
}

func TestWindow(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 10; i++ {
		s.Points = append(s.Points, Point{T: vclock.Epoch.Add(time.Duration(i) * time.Second), V: float64(i)})
	}
	w := s.Window(vclock.Epoch.Add(3*time.Second), vclock.Epoch.Add(6*time.Second))
	if len(w.Points) != 3 || w.Points[0].V != 3 || w.Points[2].V != 5 {
		t.Fatalf("window = %+v", w.Points)
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(0.266, 0.256); math.Abs(got-3.90625) > 1e-9 {
		t.Fatalf("overhead = %v", got)
	}
	if OverheadPct(1, 0) != 0 {
		t.Fatal("zero baseline mishandled")
	}
	if got := OverheadPct(0.9, 1.0); got >= 0 {
		t.Fatalf("negative overhead = %v", got)
	}
}

func TestPollSamplesOnClock(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := NewRecorder(clock)
	n := 0.0
	stop := r.Poll("counter", 10*time.Second, func() (float64, error) {
		n++
		return n, nil
	})
	defer stop()
	for i := 0; i < 3; i++ {
		clock.WaitUntilWaiters(1)
		clock.Advance(10 * time.Second)
		deadline := time.Now().Add(2 * time.Second)
		for len(r.Series("counter").Points) < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("sample %d missing", i+1)
			}
			time.Sleep(time.Millisecond)
		}
	}
	stop()
	stop() // idempotent
	vals := r.Series("counter").Values()
	if len(vals) < 3 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("values = %v", vals)
	}
}

func TestStopPolls(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := NewRecorder(clock)
	r.Poll("a", time.Second, func() (float64, error) { return 1, nil })
	r.Poll("b", time.Second, func() (float64, error) { return 2, nil })
	r.StopPolls()
	r.StopPolls() // idempotent
}

func TestTableRendersAlignedSeries(t *testing.T) {
	a := &Series{Name: "with", Points: []Point{
		{T: vclock.Epoch.Add(10 * time.Second), V: 0.266},
		{T: vclock.Epoch.Add(20 * time.Second), V: 0.27},
	}}
	b := &Series{Name: "without", Points: []Point{
		{T: vclock.Epoch.Add(10 * time.Second), V: 0.256},
	}}
	out := Table(vclock.Epoch, a, b)
	if !strings.Contains(out, "with\twithout") {
		t.Fatalf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "10\t0.266\t0.256") {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "cpu", Points: []Point{
		{T: vclock.Epoch.Add(10 * time.Second), V: 25.5},
		{T: vclock.Epoch.Add(20 * time.Second), V: 99},
	}}
	b := &Series{Name: "load", Points: []Point{
		{T: vclock.Epoch.Add(10 * time.Second), V: 0.25},
	}}
	var buf strings.Builder
	if err := WriteCSV(&buf, vclock.Epoch, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv = %q", buf.String())
	}
	if lines[0] != "t_seconds,cpu,load" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10.0,25.5") || !strings.HasSuffix(lines[1], "0.250000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",") { // load column empty in row 2
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestSparkline(t *testing.T) {
	s := &Series{Name: "x", Points: []Point{
		{V: 0}, {V: 1}, {V: 2}, {V: 3},
	}}
	line := Sparkline(s)
	if len([]rune(line)) != 4 {
		t.Fatalf("sparkline = %q", line)
	}
	if Sparkline(&Series{}) != "" {
		t.Fatal("empty sparkline nonempty")
	}
	flat := &Series{Points: []Point{{V: 5}, {V: 5}}}
	if got := Sparkline(flat); len([]rune(got)) != 2 {
		t.Fatalf("flat sparkline = %q", got)
	}
}

// Property: Mean is bounded by min and max of its inputs.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return Mean(clean) == 0
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range clean {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		m := Mean(clean)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Regression: a poll that ends on a sampling error must remove itself from
// the recorder, and its stop function plus StopPolls must both stay safe —
// the stale entry used to make StopPolls close an already-closed channel.
func TestPollErrorPrunesPoller(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := NewRecorder(clock)
	stop := r.Poll("failing", time.Second, func() (float64, error) {
		return 0, errors.New("sensor broke")
	})
	clock.WaitUntilWaiters(1)
	clock.Advance(time.Second) // fn fires, errors, poller exits

	deadline := time.Now().Add(2 * time.Second)
	for {
		r.mu.Lock()
		n := len(r.polls)
		r.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale poller still registered: %d", n)
		}
		time.Sleep(time.Millisecond)
	}
	stop()        // must not hang or panic on the already-dead poller
	r.StopPolls() // must not double-close the poller's stop channel
}

// Regression: the individual stop function and StopPolls may both fire for
// the same live poller; the second close used to panic.
func TestStopThenStopPolls(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := NewRecorder(clock)
	stop := r.Poll("a", time.Second, func() (float64, error) { return 1, nil })
	stop()
	r.StopPolls()
}

func TestRenderWidensForLongNames(t *testing.T) {
	c := NewCounters()
	long := "registry/some_extremely_long_counter_name_total"
	c.Inc(long)
	c.Inc("short")
	out := c.Render()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		i := strings.LastIndex(line, " ")
		if i <= len(long)-1 && !strings.HasPrefix(line, long) {
			t.Fatalf("column not aligned past longest name:\n%s", out)
		}
	}
	if !strings.Contains(out, long+" 1") {
		t.Fatalf("long name squeezed:\n%s", out)
	}
}
