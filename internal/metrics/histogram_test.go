package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram("t")
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 100 samples at ~2ms: every quantile is the bucket bound holding 2ms.
	for i := 0; i < 100; i++ {
		h.Observe(2e-3)
	}
	want := histBounds[bucketOf(2e-3)]
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if math.Abs(h.Sum()-0.2) > 1e-9 {
		t.Fatalf("Sum = %v, want 0.2", h.Sum())
	}
}

func TestHistogramQuantileSplit(t *testing.T) {
	h := NewHistogram("t")
	for i := 0; i < 90; i++ {
		h.Observe(1e-3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	if got, want := h.Quantile(0.5), histBounds[bucketOf(1e-3)]; got != want {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.95), histBounds[bucketOf(1.0)]; got != want {
		t.Fatalf("p95 = %v, want %v", got, want)
	}
}

func TestHistogramEdgeSamples(t *testing.T) {
	h := NewHistogram("t")
	h.Observe(-5)          // clamps to 0 → first bucket
	h.Observe(0)           // first bucket
	h.Observe(math.NaN())  // clamps to 0
	h.Observe(math.Inf(1)) // overflow bucket
	h.Observe(1e9)         // overflow bucket
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("max quantile = %v, want +Inf", got)
	}
	if got := h.Quantile(0.2); got != histBounds[0] {
		t.Fatalf("min quantile = %v, want %v", got, histBounds[0])
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.Merge(NewHistogram("x"))
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Fatal("nil histogram must be inert")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 || g.Name() != "" {
		t.Fatal("nil gauge must be inert")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	for i := 0; i < 50; i++ {
		a.Observe(1e-3)
		b.Observe(10)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	if got, want := a.Quantile(0.95), histBounds[bucketOf(10.0)]; got != want {
		t.Fatalf("merged p95 = %v, want %v", got, want)
	}
}

func TestDecadeQuantile(t *testing.T) {
	h := NewHistogram("t")
	h.Observe(3e-3) // lands somewhere inside the ms decade
	if got := h.DecadeQuantile(0.5); got != 1e-2 {
		t.Fatalf("DecadeQuantile = %v, want 1e-2", got)
	}
	// A decade bound must round to itself.
	h2 := NewHistogram("t2")
	h2.Observe(9e-4) // bucket bound is exactly 1e-3
	if got := h2.DecadeQuantile(0.5); got != 1e-3 {
		t.Fatalf("DecadeQuantile at bound = %v, want 1e-3", got)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {math.Inf(1), ">1e4s"},
		{1e-6, "1us"}, {1e-4, "100us"}, {1e-3, "1ms"}, {1e-2, "10ms"},
		{1, "1s"}, {10, "10s"}, {1e4, "10000s"},
		// Irrational bucket bounds round to three significant digits.
		{math.Pow(10, 0.2), "1.58s"}, {math.Pow(10, -0.2), "631ms"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.v); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	reg := NewRegistry()
	ctr := NewCounters()
	ctr.Inc("registry/restarts")
	reg.AttachCounters(ctr)
	reg.Gauge("registry/hosts").Set(4)
	reg.Histogram("span/total").Observe(1.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE registry_restarts_total counter",
		"registry_restarts_total 1",
		"# TYPE registry_hosts gauge",
		"registry_hosts 4",
		"# TYPE span_total histogram",
		`span_total_bucket{le="+Inf"} 1`,
		"span_total_count 1",
		"span_total_sum 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryMergeAndSnapshot(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("span/total").Observe(1)
	b.Histogram("span/total").Observe(1)
	b.Gauge("g").Set(7)
	a.Merge(b)
	if got := a.Histogram("span/total").Count(); got != 2 {
		t.Fatalf("merged count = %d, want 2", got)
	}
	snap := a.Snapshot()
	if snap.Gauges["g"] != 7 {
		t.Fatalf("snapshot gauge = %v, want 7", snap.Gauges["g"])
	}
	hs, ok := snap.Histograms["span/total"]
	if !ok || hs.Count != 2 || hs.P50 == 0 {
		t.Fatalf("snapshot histogram = %+v, ok=%v", hs, ok)
	}
	// Nil registry is inert everywhere.
	var nilReg *Registry
	nilReg.Histogram("x").Observe(1)
	nilReg.Gauge("x").Set(1)
	nilReg.Merge(a)
	if err := nilReg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
