package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Inc("b")
	c.Add("a", 3)
	c.Inc("b")
	if got := c.Get("a"); got != 3 {
		t.Fatalf("a = %d, want 3", got)
	}
	if got := c.Get("b"); got != 2 {
		t.Fatalf("b = %d, want 2", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	snap := c.Snapshot()
	if snap["a"] != 3 || snap["b"] != 2 {
		t.Fatalf("Snapshot = %v", snap)
	}
	out := c.Render()
	if !strings.Contains(out, "a") || !strings.Contains(out, "3") {
		t.Fatalf("Render = %q", out)
	}
	// "a" must sort before "b" for deterministic output.
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Fatalf("Render not sorted: %q", out)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Inc("x") // must not panic
	c.Add("x", 5)
	if c.Get("x") != 0 {
		t.Fatal("nil counters returned non-zero")
	}
	if c.Names() != nil {
		t.Fatal("nil counters returned names")
	}
	if len(c.Snapshot()) != 0 {
		t.Fatal("nil counters returned snapshot entries")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 800 {
		t.Fatalf("n = %d, want 800", got)
	}
}
