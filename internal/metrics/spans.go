package metrics

import (
	"sort"
	"strings"
	"sync"
	"time"

	"autoresched/internal/events"
)

// Span histogram names. Each span is one phase of a migration, derived
// from the commander/hpcm event stream and stamped with virtual time:
//
//	poll_wait  commander order accepted → app reaches a poll point (start)
//	init       poll point → destination process spawned and initialised
//	transfer   init → eager state shipped, destination resumed (commit)
//	restore    resume → lazy pages restored, migration fully done
//	total      order (or start, for spontaneous migrations) → restore
const (
	SpanPollWait = "span/poll_wait"
	SpanInit     = "span/init"
	SpanTransfer = "span/transfer"
	SpanRestore  = "span/restore"
	SpanTotal    = "span/total"
)

// Event kinds the span builder consumes. These mirror the commander's
// order event and hpcm's MigrationPhase vocabulary; they are re-declared
// here because hpcm imports metrics, not the other way round.
const (
	kindOrder   = "order"
	kindStart   = "start"
	kindInit    = "init"
	kindResume  = "resume"
	kindRestore = "restore"
	kindAborted = "aborted"
	kindFailed  = "failed"
)

// spanState tracks one in-flight migration between phase events.
type spanState struct {
	orderAt time.Time // zero when the migration had no commander order
	startAt time.Time
	initAt  time.Time
	resume  time.Time
}

// Spans is an events.Sink that folds commander/hpcm events into per-phase
// migration latency histograms. Orders are matched to migrations by the
// (source host, destination host) route — the commander runs on the source
// host and hpcm's start event carries the same pair — and in-flight state
// is keyed by process label from the start event onward. Durations come
// from the events' virtual timestamps, so two runs with identical event
// schedules produce identical histograms.
type Spans struct {
	mu     sync.Mutex
	orders map[string]time.Time  // route "src→dst" → last order time
	active map[string]*spanState // process label → in-flight migration

	pollWait *Histogram
	init     *Histogram
	transfer *Histogram
	restore  *Histogram
	total    *Histogram
}

// NewSpans builds a span sink writing into reg. The five span histograms
// are created eagerly so they exist (empty) even before any migration.
func NewSpans(reg *Registry) *Spans {
	return &Spans{
		orders:   make(map[string]time.Time),
		active:   make(map[string]*spanState),
		pollWait: reg.Histogram(SpanPollWait),
		init:     reg.Histogram(SpanInit),
		transfer: reg.Histogram(SpanTransfer),
		restore:  reg.Histogram(SpanRestore),
		total:    reg.Histogram(SpanTotal),
	}
}

func routeKey(src, dst string) string { return src + "\x00" + dst }

// Publish consumes one runtime event. Safe for concurrent use; never
// blocks. A nil *Spans is a no-op sink.
func (s *Spans) Publish(e events.Event) {
	if s == nil {
		return
	}
	switch e.Source {
	case events.SourceCommander:
		if e.Kind != kindOrder {
			return
		}
		s.mu.Lock()
		s.orders[routeKey(e.Host, e.Dest)] = e.Time
		s.mu.Unlock()
	case events.SourceHPCM:
		s.hpcmEvent(e)
	default:
		// Registry, faults, jobs and malleable events carry no migration
		// span information.
	}
}

func (s *Spans) hpcmEvent(e events.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case kindStart:
		st := &spanState{startAt: e.Time}
		key := routeKey(e.Host, e.Dest)
		if at, ok := s.orders[key]; ok {
			st.orderAt = at
			delete(s.orders, key)
			s.pollWait.Observe(e.Time.Sub(at).Seconds())
		}
		s.active[e.Proc] = st
	case kindInit:
		if st := s.active[e.Proc]; st != nil {
			st.initAt = e.Time
			s.init.Observe(e.Time.Sub(st.startAt).Seconds())
		}
	case kindResume:
		if st := s.active[e.Proc]; st != nil && !st.initAt.IsZero() {
			st.resume = e.Time
			s.transfer.Observe(e.Time.Sub(st.initAt).Seconds())
		}
	case kindRestore:
		if st := s.active[e.Proc]; st != nil {
			if !st.resume.IsZero() {
				s.restore.Observe(e.Time.Sub(st.resume).Seconds())
			}
			from := st.orderAt
			if from.IsZero() {
				from = st.startAt
			}
			s.total.Observe(e.Time.Sub(from).Seconds())
			delete(s.active, e.Proc)
		}
	case kindAborted, kindFailed:
		delete(s.active, e.Proc)
	default:
		// Order events route through Publish, and intermediate precopy
		// kinds mark no span boundary.
	}
}

// SpanStat is one span histogram's summary: the sample count plus bucket-
// bound quantiles, pre-formatted for experiment output. The count is
// phase-driven (as deterministic as the event schedule); the quantile
// strings are exact functions of the observed durations' buckets, so they
// are byte-identical across runs only when the durations themselves are —
// true for synthetic schedules (MigrationModel), not for live runs under a
// wall-paced scaled clock, whose durations carry goroutine wake-up jitter
// multiplied by the scale factor.
type SpanStat struct {
	Name  string
	Count uint64
	P50   string
	P95   string
	P99   string
}

// SpanStats summarises every histogram whose name starts with prefix
// (e.g. "span/"), sorted by name.
func (r *Registry) SpanStats(prefix string) []SpanStat {
	if r == nil {
		return nil
	}
	var stats []SpanStat
	for _, name := range r.HistogramNames() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		h := r.Histogram(name)
		stats = append(stats, SpanStat{
			Name:  name,
			Count: h.Count(),
			P50:   FormatSeconds(h.Quantile(0.50)),
			P95:   FormatSeconds(h.Quantile(0.95)),
			P99:   FormatSeconds(h.Quantile(0.99)),
		})
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}
