// Package metrics records the time series the evaluation plots: load
// averages, CPU utilisation and network rates sampled at fixed intervals
// (10 seconds in the paper), plus the summary statistics quoted in Section
// 5 (means, overhead percentages).
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"autoresched/internal/vclock"
)

// Point is one sample.
type Point struct {
	T time.Time
	V float64
}

// Series is a named, time-ordered sample sequence.
type Series struct {
	Name   string
	Points []Point
}

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	if s == nil {
		return nil
	}
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Mean returns the arithmetic mean of the series (0 for empty).
func (s *Series) Mean() float64 {
	if s == nil {
		return 0
	}
	return Mean(s.Values())
}

// Max returns the maximum value (0 for empty).
func (s *Series) Max() float64 {
	if s == nil {
		return 0
	}
	best := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > best {
			best = p.V
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// Window returns the sub-series within [from, to).
func (s *Series) Window(from, to time.Time) *Series {
	if s == nil {
		return &Series{}
	}
	out := &Series{Name: s.Name}
	for _, p := range s.Points {
		if !p.T.Before(from) && p.T.Before(to) {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Mean returns the arithmetic mean of vals (0 for empty).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// OverheadPct is the relative overhead of with versus without, in percent:
// 100*(with-without)/without. Zero baseline yields 0.
func OverheadPct(with, without float64) float64 {
	if without == 0 {
		return 0
	}
	return 100 * (with - without) / without
}

// Recorder collects named series against a clock. A nil *Recorder is a
// no-op: recording is dropped, lookups return empty series, and Poll
// returns a stop function without starting a poller, so components can
// treat the recorder as optional.
type Recorder struct {
	clock vclock.Clock
	start time.Time

	mu     sync.Mutex
	series map[string]*Series
	order  []string
	polls  []*poller
}

type poller struct {
	stop    chan struct{}
	stopped chan struct{}
	once    sync.Once
}

// halt asks the poll goroutine to exit. Idempotent, so the individual stop
// function and StopPolls can both fire without a double close.
func (p *poller) halt() { p.once.Do(func() { close(p.stop) }) }

// NewRecorder creates a recorder stamped against clock.
func NewRecorder(clock vclock.Clock) *Recorder {
	return &Recorder{
		clock:  clock,
		start:  clock.Now(),
		series: make(map[string]*Series),
	}
}

// Start returns the recorder's creation instant.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Record appends a sample to a series, creating it on first use.
func (r *Recorder) Record(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Points = append(s.Points, Point{T: r.clock.Now(), V: v})
}

// Poll samples fn every interval into the named series until StopPolls (or
// the returned stop function) is called. Sampling errors end the poll.
func (r *Recorder) Poll(name string, interval time.Duration, fn func() (float64, error)) (stop func()) {
	if r == nil {
		return func() {}
	}
	p := &poller{stop: make(chan struct{}), stopped: make(chan struct{})}
	r.mu.Lock()
	r.polls = append(r.polls, p)
	r.mu.Unlock()
	go func() {
		// A poll that ends on its own (sampling error) must leave r.polls,
		// or the stale entry would accumulate and StopPolls would wait on
		// pollers long dead.
		defer func() {
			r.removePoll(p)
			close(p.stopped)
		}()
		for {
			timer := r.clock.NewTimer(interval)
			select {
			case <-timer.C:
			case <-p.stop:
				timer.Stop()
				return
			}
			v, err := fn()
			if err != nil {
				return
			}
			r.Record(name, v)
		}
	}()
	return func() {
		p.halt()
		<-p.stopped
	}
}

// removePoll drops one poller from the registry.
func (r *Recorder) removePoll(p *poller) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, q := range r.polls {
		if q == p {
			r.polls = append(r.polls[:i], r.polls[i+1:]...)
			return
		}
	}
}

// StopPolls halts every poller started with Poll.
func (r *Recorder) StopPolls() {
	if r == nil {
		return
	}
	r.mu.Lock()
	polls := r.polls
	r.polls = nil
	r.mu.Unlock()
	for _, p := range polls {
		p.halt()
	}
	for _, p := range polls {
		<-p.stopped
	}
}

// Series returns a copy of the named series (empty series if unknown).
func (r *Recorder) Series(name string) *Series {
	if r == nil {
		return &Series{Name: name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		return &Series{Name: name}
	}
	out := &Series{Name: name, Points: append([]Point(nil), s.Points...)}
	return out
}

// Names returns the recorded series names in first-use order.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Table renders series side by side: one row per sample index, the first
// column the elapsed seconds of the first series' samples. It is the
// plain-text stand-in for the paper's figures.
func Table(base time.Time, series ...*Series) string {
	var b strings.Builder
	b.WriteString("t(s)")
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s", s.Name)
	}
	b.WriteByte('\n')
	rows := 0
	for _, s := range series {
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	for i := 0; i < rows; i++ {
		stamped := false
		var cells []string
		for _, s := range series {
			if i < len(s.Points) {
				if !stamped {
					fmt.Fprintf(&b, "%.0f", s.Points[i].T.Sub(base).Seconds())
					stamped = true
				}
				cells = append(cells, fmt.Sprintf("%.3f", s.Points[i].V))
			} else {
				cells = append(cells, "")
			}
		}
		if !stamped {
			b.WriteString("?")
		}
		for _, c := range cells {
			b.WriteByte('\t')
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV emits series side by side as CSV: a header row, then one row
// per sample index with the elapsed seconds of the row's first present
// sample — the format for re-plotting the figures with external tools.
func WriteCSV(w io.Writer, base time.Time, series ...*Series) error {
	cw := csv.NewWriter(w)
	header := []string{"t_seconds"}
	rows := 0
	for _, s := range series {
		header = append(header, s.Name)
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		row := make([]string, 1, len(series)+1)
		for _, s := range series {
			if i < len(s.Points) {
				if row[0] == "" {
					row[0] = strconv.FormatFloat(s.Points[i].T.Sub(base).Seconds(), 'f', 1, 64)
				}
				row = append(row, strconv.FormatFloat(s.Points[i].V, 'f', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sparkline renders a series as a one-line unicode sparkline, for quick
// terminal inspection of a figure's shape.
func Sparkline(s *Series) string {
	if len(s.Points) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	var b strings.Builder
	for _, p := range s.Points {
		idx := 0
		if hi > lo {
			idx = int((p.V - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// Quantile returns the q-quantile (0..1) of the series values by linear
// interpolation; 0 for an empty series.
func (s *Series) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	if len(s.Points) == 0 {
		return 0
	}
	vals := s.Values()
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[lo]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}
