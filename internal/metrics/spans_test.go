package metrics

import (
	"testing"
	"time"

	"autoresched/internal/events"
)

func spanEvent(t time.Time, source, kind, host, dest, proc string) events.Event {
	return events.Event{Time: t, Source: source, Kind: kind, Host: host, Dest: dest, Proc: proc}
}

func TestSpansFullMigration(t *testing.T) {
	reg := NewRegistry()
	s := NewSpans(reg)
	t0 := time.Date(2004, 4, 1, 0, 0, 0, 0, time.UTC)
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	s.Publish(spanEvent(at(0), events.SourceCommander, "order", "ws1", "ws2", ""))
	s.Publish(spanEvent(at(2*time.Second), events.SourceHPCM, "start", "ws1", "ws2", "app"))
	s.Publish(spanEvent(at(3*time.Second), events.SourceHPCM, "init", "ws1", "ws2", "app"))
	s.Publish(spanEvent(at(5*time.Second), events.SourceHPCM, "resume", "ws1", "ws2", "app"))
	s.Publish(spanEvent(at(9*time.Second), events.SourceHPCM, "restore", "ws1", "ws2", "app"))

	check := func(name string, wantSeconds float64) {
		t.Helper()
		h := reg.Histogram(name)
		if h.Count() != 1 {
			t.Fatalf("%s count = %d, want 1", name, h.Count())
		}
		if got := h.Sum(); got != wantSeconds {
			t.Fatalf("%s sum = %v, want %v", name, got, wantSeconds)
		}
	}
	check(SpanPollWait, 2)
	check(SpanInit, 1)
	check(SpanTransfer, 2)
	check(SpanRestore, 4)
	check(SpanTotal, 9)
}

func TestSpansWithoutOrderAnchorsOnStart(t *testing.T) {
	reg := NewRegistry()
	s := NewSpans(reg)
	t0 := time.Date(2004, 4, 1, 0, 0, 0, 0, time.UTC)
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	// No commander order: a spontaneous migration. total = start→restore.
	s.Publish(spanEvent(at(0), events.SourceHPCM, "start", "ws1", "ws2", "app"))
	s.Publish(spanEvent(at(time.Second), events.SourceHPCM, "init", "ws1", "ws2", "app"))
	s.Publish(spanEvent(at(2*time.Second), events.SourceHPCM, "resume", "ws1", "ws2", "app"))
	s.Publish(spanEvent(at(3*time.Second), events.SourceHPCM, "restore", "ws1", "ws2", "app"))

	if got := reg.Histogram(SpanPollWait).Count(); got != 0 {
		t.Fatalf("poll_wait count = %d, want 0", got)
	}
	if got := reg.Histogram(SpanTotal).Sum(); got != 3 {
		t.Fatalf("total sum = %v, want 3", got)
	}
}

func TestSpansAbortCleansUp(t *testing.T) {
	reg := NewRegistry()
	s := NewSpans(reg)
	t0 := time.Date(2004, 4, 1, 0, 0, 0, 0, time.UTC)
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	s.Publish(spanEvent(at(0), events.SourceCommander, "order", "ws1", "ws2", ""))
	s.Publish(spanEvent(at(time.Second), events.SourceHPCM, "start", "ws1", "ws2", "app"))
	s.Publish(spanEvent(at(2*time.Second), events.SourceHPCM, "aborted", "ws1", "ws2", "app"))
	// A later restore for the same proc must be ignored — the span is gone.
	s.Publish(spanEvent(at(3*time.Second), events.SourceHPCM, "restore", "ws1", "ws2", "app"))

	if got := reg.Histogram(SpanTotal).Count(); got != 0 {
		t.Fatalf("total count after abort = %d, want 0", got)
	}
	if got := reg.Histogram(SpanPollWait).Count(); got != 1 {
		t.Fatalf("poll_wait count = %d, want 1", got)
	}
}

func TestSpansNilSafe(t *testing.T) {
	var s *Spans
	s.Publish(events.Event{Source: events.SourceHPCM, Kind: "start"})
}

func TestSpanStats(t *testing.T) {
	reg := NewRegistry()
	NewSpans(reg) // pre-creates all five span histograms
	reg.Histogram(SpanTotal).Observe(3)
	stats := reg.SpanStats("span/")
	if len(stats) != 5 {
		t.Fatalf("len(stats) = %d, want 5", len(stats))
	}
	for _, st := range stats {
		if st.Name == SpanTotal {
			// 3 s lands in the bucket bounded by 10^0.6 ≈ 3.98 s.
			if st.Count != 1 || st.P50 != "3.98s" {
				t.Fatalf("span/total stat = %+v, want count 1 p50 3.98s", st)
			}
		} else if st.Count != 0 || st.P50 != "0" {
			t.Fatalf("%s stat = %+v, want empty", st.Name, st)
		}
	}
}
