// Package scenario is the scenario-diversity engine: a seeded
// random-but-deterministic generator drawing from a Space that describes
// the cross-product the runtime now supports — workloads (jacobi/tree;
// flat, paged or elastic memory) × fault plans × job policies
// (fifo/priority-preemptive/backfill) × migration modes (live or
// stop-and-copy) × link speeds — plus a Runner that executes each generated
// scenario through the planner, migration-model and fault machinery on the
// sim clock, and a run-dir report writer with golden-file regression over a
// pinned seed set. Where the chaos suite hand-authors twelve situations,
// `cmd/repro -exp fleet` generates hundreds per CI run, and any behavior
// drift in the scheduler, planner, migration model or fault handling shows
// up as a readable golden diff instead of a silent change.
package scenario

import (
	"fmt"
	"time"

	"autoresched/internal/faults"
)

// Workload kinds, memory modes, migration modes and fault kinds a Scenario
// can carry, one const family per axis (the eventcase check holds
// switches over a family to exhaustive-or-default). Policies come from
// jobs.Policies().
const (
	WorkloadJacobi = "jacobi"
	WorkloadTree   = "tree"
)

const (
	MemFlat    = "flat"
	MemPaged   = "paged"
	MemElastic = "elastic"
)

const (
	MigrateLive     = "live"
	MigrateStopCopy = "stop-and-copy"
)

const (
	FaultCrashHost     = "crash-host"
	FaultLinkDegrade   = "link-degrade"
	FaultMigrate       = "migrate"
	FaultResize        = "resize"
	FaultRegistryCrash = "registry-crash"
)

// Persistence modes: whether the scenario's registry journals its protocol
// state to a durable store. Registry crash-loop faults are only coherent
// under PersistFile — a storeless registry would re-register the fleet, not
// recover it.
const (
	PersistNone = "none"
	PersistFile = "file"
)

// JobSpec is one generated job of a scenario: the model-level analogue of
// jobs.Spec, fully serialisable, with an arrival offset and a work budget
// in rank-seconds.
type JobSpec struct {
	Name     string `json:"name"`
	Priority int    `json:"priority"`
	Gang     int    `json:"gang"`
	Elastic  bool   `json:"elastic,omitempty"`
	MinWorld int    `json:"min_world"`
	// Big pins the job to the "big" host class (every fourth host), the
	// heterogeneous case that forces the planner's migrate eviction mode.
	Big bool `json:"big,omitempty"`
	// ArrivalSec is the virtual second the job joins the queue.
	ArrivalSec int `json:"arrival_sec"`
	// WorkSec is the per-rank compute budget in rank-seconds: a gang of G
	// needs Gang*WorkSec rank-seconds in total.
	WorkSec int `json:"work_sec"`
}

// FaultSpec is one scheduled fault of a scenario. Only the fields its Kind
// documents are used.
type FaultSpec struct {
	AtSec int    `json:"at_sec"`
	Kind  string `json:"kind"`
	// Host names the crash victim (FaultCrashHost).
	Host string `json:"host,omitempty"`
	// DownSec is the crash outage length; the host revives afterwards.
	DownSec int `json:"down_sec,omitempty"`
	// Factor scales the migration-link bandwidth for ForSec seconds
	// (FaultLinkDegrade; 0 < Factor <= 1).
	Factor float64 `json:"factor,omitempty"`
	ForSec int     `json:"for_sec,omitempty"`
	// Job names the target of a forced migration or resize.
	Job string `json:"job,omitempty"`
	// World is the resize target world size (FaultResize).
	World int `json:"world,omitempty"`
	// Loops is the number of back-to-back registry restarts
	// (FaultRegistryCrash); each one is a crash-consistent bootstrap.
	Loops int `json:"loops,omitempty"`
}

// Scenario is one generated situation: a fleet, a job queue, a fault plan
// and the mode axes the runtime supports. It is a pure value — JSON
// round-trippable, byte-stable under encoding/json — and everything the
// Runner does is a deterministic function of it.
type Scenario struct {
	Name string `json:"name"`
	// Seed and Index record provenance: the generator seed and the draw
	// number within it.
	Seed  int64 `json:"seed"`
	Index int   `json:"index"`

	Workload  string `json:"workload"`
	MemMode   string `json:"mem_mode"`
	Migration string `json:"migration"`
	Policy    string `json:"policy"`
	// Persistence selects the registry's durability mode (Persist*
	// constants); empty means PersistNone for pre-axis scenarios.
	Persistence string `json:"persistence,omitempty"`

	// LinkMbps is the migration-link speed in megabits per second.
	LinkMbps int `json:"link_mbps"`
	// Hosts is the fleet size; every fourth host (h01, h05, ...) is "big".
	Hosts int `json:"hosts"`
	// StateMB is the per-rank migratable state in MiB (4 KiB pages).
	StateMB int `json:"state_mb"`
	// DirtyPagesPerSec is the page-dirtying rate the live-migration model
	// sees; zero outside MigrateLive.
	DirtyPagesPerSec int `json:"dirty_pages_per_sec,omitempty"`
	// DurationSec is the arrival/fault horizon; the runner lets the queue
	// drain past it up to a deterministic cap.
	DurationSec int `json:"duration_sec"`
	// SchedEverySec paces the admission planner.
	SchedEverySec int `json:"sched_every_sec"`

	Jobs   []JobSpec   `json:"jobs"`
	Faults []FaultSpec `json:"faults,omitempty"`
}

// HostName returns the fleet-order name of host i (zero-based): h01..hNN.
func HostName(i int) string { return fmt.Sprintf("h%02d", i+1) }

// BigHost reports whether host i (zero-based) belongs to the big class.
func BigHost(i int) bool { return i%4 == 0 }

// TotalPages is the migrated region size in 4 KiB pages.
func (s Scenario) TotalPages() int { return s.StateMB * 256 }

// Bandwidth is the nominal migration-link speed in bytes per second.
func (s Scenario) Bandwidth() float64 { return float64(s.LinkMbps) * 1e6 / 8 }

// FaultPlan lowers the scenario's fault schedule onto the real
// fault-injection DSL (internal/faults): crashes become
// KindCrashHost/KindReviveHost pairs, degradations KindLinkFactor windows,
// forced migrations KindMigrate orders and resizes KindResize proposals
// (with Count carrying the target world, since the model picks the
// placement). The fleet Runner interprets the plan itself; the live path
// hands the host-level events to a faults.Injector.
func (s Scenario) FaultPlan() faults.Plan {
	at := func(sec int) time.Duration { return time.Duration(sec) * time.Second }
	plan := faults.Plan{Name: s.Name}
	for _, f := range s.Faults {
		switch f.Kind {
		case FaultCrashHost:
			plan.Events = append(plan.Events,
				faults.Event{After: at(f.AtSec), Kind: faults.KindCrashHost, Host: f.Host},
				faults.Event{After: at(f.AtSec + f.DownSec), Kind: faults.KindReviveHost, Host: f.Host})
		case FaultLinkDegrade:
			plan.Events = append(plan.Events,
				faults.Event{After: at(f.AtSec), Kind: faults.KindLinkFactor, Host: s.degradeEdgeA(), Peer: s.degradeEdgeB(), Factor: f.Factor},
				faults.Event{After: at(f.AtSec + f.ForSec), Kind: faults.KindLinkFactor, Host: s.degradeEdgeA(), Peer: s.degradeEdgeB(), Factor: 1})
		case FaultMigrate:
			plan.Events = append(plan.Events,
				faults.Event{After: at(f.AtSec), Kind: faults.KindMigrate, Proc: f.Job})
		case FaultResize:
			plan.Events = append(plan.Events,
				faults.Event{After: at(f.AtSec), Kind: faults.KindResize, Proc: f.Job, Count: f.World})
		case FaultRegistryCrash:
			plan.Events = append(plan.Events,
				faults.Event{After: at(f.AtSec), Kind: faults.KindCrashLoopRegistry, Count: f.Loops})
		}
	}
	return plan
}

// The model degrades the whole migration path; the DSL wants an edge, so
// the lowered plan pins the first two hosts.
func (s Scenario) degradeEdgeA() string { return HostName(0) }
func (s Scenario) degradeEdgeB() string { return HostName(1) }
