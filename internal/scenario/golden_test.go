package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// regenCmd is the exact command that refreshes the goldens, quoted verbatim
// in every staleness failure so the fix is one copy-paste away.
const regenCmd = "go run ./internal/scenario/testdata/regen.go"

// firstDiff locates the first differing line of two texts, for a failure
// message that points at the drift instead of dumping both fleets.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(gl), len(wl))
}

// TestGoldenUpToDate: the committed goldens match what the generator and
// runner produce today for the pinned seeds. Any behavior drift in the
// generator, planner, migration model or fault handling fails here with
// the regeneration command in the message.
func TestGoldenUpToDate(t *testing.T) {
	for _, seed := range GoldenSeeds {
		path := filepath.Join("testdata", GoldenFile(seed))
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("golden for seed %d unreadable (%v); regenerate with:\n  %s", seed, err, regenCmd)
		}
		got, err := GoldenFleet(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != string(want) {
			t.Errorf("golden for seed %d is stale at %s\n%s\nIf the change is intended, regenerate with:\n  %s",
				seed, path, firstDiff(got, string(want)), regenCmd)
		}
	}
}

// TestGoldenFleetCoverage: the pinned seed set stays interesting — across
// the golden fleets every admission policy appears, migrations execute in
// both live and stop-and-copy modes, preemptions, elastic resizes and both
// crash-churn responses all happen. If a generator change washes the
// variety out, re-pin the seeds rather than letting the regression thin.
func TestGoldenFleetCoverage(t *testing.T) {
	policies := map[string]int{}
	migrations := map[string]int{}
	preempt, resizes, shrinks, requeues, regCrashes := 0, 0, 0, 0, 0
	for _, seed := range GoldenSeeds {
		results := RunFleet(DefaultSpace(), seed, GoldenRuns)
		for _, r := range results {
			for _, f := range r.Scenario.Faults {
				if f.Kind == FaultRegistryCrash {
					regCrashes++
				}
			}
		}
		sum := Summarize(seed, results)
		if sum.Drained != sum.Runs {
			t.Errorf("seed %d: %d/%d runs drained; goldens must complete", seed, sum.Drained, sum.Runs)
		}
		for p, n := range sum.ByPolicy {
			policies[p] += n
		}
		for m, n := range sum.Migrations {
			migrations[m] += n
		}
		for _, n := range sum.Preemptions {
			preempt += n
		}
		resizes += sum.Resizes
		shrinks += sum.ChurnShrinks
		requeues += sum.ChurnRequeues
	}
	if len(policies) < 3 {
		t.Errorf("golden fleets cover %d policies, want all 3 (%v)", len(policies), policies)
	}
	if migrations["precopy"] == 0 || migrations["stop-and-copy"] == 0 {
		t.Errorf("golden fleets miss a migration mode: %v", migrations)
	}
	if preempt == 0 {
		t.Error("golden fleets plan no preemptions")
	}
	if resizes == 0 {
		t.Error("golden fleets execute no elastic resizes")
	}
	if shrinks == 0 || requeues == 0 {
		t.Errorf("golden fleets miss a crash-churn response: shrinks=%d requeues=%d", shrinks, requeues)
	}
	if regCrashes == 0 {
		t.Error("golden fleets schedule no registry crash-loop faults")
	}
}

// TestWriteRunDirMatchesFiles: the on-disk rundir is byte-for-byte the
// in-memory file set the goldens flatten — writing and re-reading loses
// nothing.
func TestWriteRunDirMatchesFiles(t *testing.T) {
	results := RunFleet(DefaultSpace(), 1, 2)
	dir := t.TempDir()
	if err := WriteRunDir(dir, 1, results); err != nil {
		t.Fatal(err)
	}
	files, err := Files(1, results)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range files {
		got, err := os.ReadFile(filepath.Join(dir, path))
		if err != nil {
			t.Fatalf("rundir missing %s: %v", path, err)
		}
		if string(got) != string(want) {
			t.Fatalf("rundir %s differs from the in-memory rendering", path)
		}
	}
}
