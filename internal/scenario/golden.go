package scenario

import "fmt"

// The golden regression's pinned configuration, shared by the test
// (TestGoldenUpToDate), the regeneration helper (testdata/regen.go) and the
// CI smoke: the same seeds and fleet size everywhere, or the regression
// proves nothing.

// GoldenSeeds are the pinned generator seeds the regression covers. Chosen
// for variety, not tuned for outcomes: across the four fleets every policy,
// both migration modes, all three eviction modes, elastic resizes, both
// crash-churn responses (requeue and shrink) and registry crash-loop
// recoveries appear. Re-pinned when the persistence axis joined the draw
// (any new draw shifts the whole rng stream).
var GoldenSeeds = []int64{1, 37, 62, 71}

// GoldenRuns is the fleet size per pinned seed. Small enough that a golden
// diff stays readable; large enough that each fleet crosses several
// scenario axes.
const GoldenRuns = 4

// GoldenFile is the committed golden for one pinned seed, relative to the
// package's testdata directory.
func GoldenFile(seed int64) string {
	return fmt.Sprintf("golden/seed-%d.txt", seed)
}

// RunFleet generates and executes a fleet: n scenarios drawn from the space
// at the seed, each run through the deterministic Runner.
func RunFleet(space Space, seed int64, n int) []Result {
	gen := NewGenerator(space, seed)
	var run Runner
	results := make([]Result, 0, n)
	for _, s := range gen.Generate(n) {
		results = append(results, run.Run(s))
	}
	return results
}

// GoldenFleet renders the flattened golden content for one pinned seed.
func GoldenFleet(seed int64) (string, error) {
	return Flatten(seed, RunFleet(DefaultSpace(), seed, GoldenRuns))
}
