package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"autoresched/internal/metrics"
)

// The run-dir report writer. A fleet run materialises as one directory per
// scenario — the scenario itself, its outcome, and the event-schedule
// digest — plus a fleet-level summary.json. Files builds the whole file set
// as an in-memory map first, so the on-disk rundir, the flattened golden
// rendering and the regression test all see the identical bytes.

// Summary is the fleet-level roll-up written as summary.json.
type Summary struct {
	Seed int64 `json:"seed"`
	Runs int   `json:"runs"`
	// Drained counts runs whose whole queue completed inside the cap.
	Drained       int `json:"drained"`
	JobsTotal     int `json:"jobs_total"`
	JobsCompleted int `json:"jobs_completed"`
	Admissions    int `json:"admissions"`
	// Preemptions aggregates planner evictions by mode across the fleet.
	Preemptions map[string]int `json:"preemptions,omitempty"`
	// Migrations aggregates executed migrations by modeled mode.
	Migrations    map[string]int `json:"migrations,omitempty"`
	Resizes       int            `json:"resizes,omitempty"`
	ChurnRequeues int            `json:"churn_requeues,omitempty"`
	ChurnShrinks  int            `json:"churn_shrinks,omitempty"`
	// ByPolicy counts runs per admission policy, a quick skew check on the
	// generator.
	ByPolicy map[string]int `json:"by_policy"`
	// Downtime and MigrationTotal summarise the merged fleet histograms
	// (every freeze window and end-to-end migration across all runs).
	Downtime       Quantiles `json:"downtime"`
	MigrationTotal Quantiles `json:"migration_total"`
}

// Summarize rolls a fleet of results into one Summary.
func Summarize(seed int64, results []Result) Summary {
	sum := Summary{
		Seed:        seed,
		Runs:        len(results),
		Preemptions: map[string]int{},
		Migrations:  map[string]int{},
		ByPolicy:    map[string]int{},
	}
	down := metrics.NewHistogram("fleet/downtime_seconds")
	migr := metrics.NewHistogram("fleet/migration_seconds")
	for _, r := range results {
		o := r.Outcome
		if o.Drained {
			sum.Drained++
		}
		sum.JobsTotal += o.JobsTotal
		sum.JobsCompleted += o.JobsCompleted
		sum.Admissions += o.Admissions
		for mode, n := range o.Preemptions {
			sum.Preemptions[mode] += n
		}
		for mode, n := range o.Migrations {
			sum.Migrations[mode] += n
		}
		sum.Resizes += o.Resizes
		sum.ChurnRequeues += o.ChurnRequeues
		sum.ChurnShrinks += o.ChurnShrinks
		sum.ByPolicy[r.Scenario.Policy]++
		down.Merge(r.Metrics.Histogram("fleet/downtime_seconds"))
		migr.Merge(r.Metrics.Histogram("fleet/migration_seconds"))
	}
	sum.Downtime = histQuantiles(down)
	sum.MigrationTotal = histQuantiles(migr)
	return sum
}

// RunName is the rundir subdirectory of result i: run-000-s1-r000, ...
func RunName(i int, r Result) string {
	return fmt.Sprintf("run-%03d-%s", i, r.Scenario.Name)
}

// Files renders the complete rundir file set for one fleet: relative path
// -> content. Keys are logical slash-separated paths (path.Join, never the
// OS separator) so the flattened golden rendering is identical on every
// platform; WriteRunDir converts to OS paths at the filesystem boundary.
// Deterministic: encoding/json sorts map keys and every recorded quantity
// is a pure function of the seed.
func Files(seed int64, results []Result) (map[string][]byte, error) {
	out := make(map[string][]byte, 3*len(results)+1)
	put := func(path string, v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("rundir: encoding %s: %w", path, err)
		}
		out[path] = append(b, '\n')
		return nil
	}
	for i, r := range results {
		dir := RunName(i, r)
		if err := put(path.Join(dir, "scenario.json"), r.Scenario); err != nil {
			return nil, err
		}
		if err := put(path.Join(dir, "outcome.json"), r.Outcome); err != nil {
			return nil, err
		}
		if len(r.Spans) > 0 {
			if err := put(path.Join(dir, "migrations.json"), r.Spans); err != nil {
				return nil, err
			}
		}
		if len(r.Resizes) > 0 {
			if err := put(path.Join(dir, "resizes.json"), r.Resizes); err != nil {
				return nil, err
			}
		}
		out[path.Join(dir, "schedule.txt")] = []byte(strings.Join(r.Schedule, "\n") + "\n")
	}
	if err := put("summary.json", Summarize(seed, results)); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRunDir writes the fleet's file set under dir, creating run
// subdirectories as needed.
func WriteRunDir(dir string, seed int64, results []Result) error {
	files, err := Files(seed, results)
	if err != nil {
		return err
	}
	for rel, content := range files {
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, content, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Flatten renders the fleet's file set as one text blob: every rundir file
// in path order under a banner line. This is the golden format — a single
// committed file per pinned seed whose diff reads as rundir diffs.
func Flatten(seed int64, results []Result) (string, error) {
	files, err := Files(seed, results)
	if err != nil {
		return "", err
	}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "=== %s ===\n", p)
		b.Write(files[p])
	}
	return b.String(), nil
}
