package scenario

import (
	"testing"
	"time"
)

// TestRunLiveSubmitsGeneratedQueue: a benign generated-shape scenario goes
// through the real control plane — core.System.Submit, the live dispatcher,
// rank launch — and every job completes. This is the bridge check that the
// generator's output is a valid input to the live machinery, not only to
// the model runner.
func TestRunLiveSubmitsGeneratedQueue(t *testing.T) {
	s := Scenario{
		Name: "live-smoke", Workload: WorkloadJacobi, MemMode: MemPaged,
		Migration: MigrateStopCopy, Policy: "priority-preemptive", LinkMbps: 100,
		Hosts: 4, StateMB: 1, DurationSec: 240, SchedEverySec: 1,
		Jobs: []JobSpec{
			{Name: "a", Priority: 1, Gang: 2, MinWorld: 2, ArrivalSec: 0, WorkSec: 30},
			{Name: "b", Priority: 0, Gang: 1, MinWorld: 1, ArrivalSec: 0, WorkSec: 30},
		},
	}
	if err := testSpace().Check(s); err != nil {
		t.Fatal(err)
	}
	out, err := RunLive(s, 1000, 10*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if out.Submitted != 2 || out.Completed != 2 || out.Failed != 0 {
		t.Fatalf("live outcome = %+v, want both jobs completed", out)
	}
}

// TestRunLiveRejectsUnknownPolicy: the live bridge validates the policy
// axis before building anything.
func TestRunLiveRejectsUnknownPolicy(t *testing.T) {
	s := Scenario{Policy: "round-robin"}
	if _, err := RunLive(s, 1000, time.Hour); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
