package scenario

import (
	"fmt"

	"autoresched/internal/jobs"
)

// Range is an inclusive integer interval a generated dimension is drawn
// from.
type Range struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

func (r Range) contains(v int) bool { return v >= r.Min && v <= r.Max }

// Space describes the supported cross-product a Generator draws from. The
// zero value is not useful; start from DefaultSpace. Every axis is a closed
// list or a bounded range, so the space is finite and Check can state the
// coherence constraints exactly.
type Space struct {
	Workloads  []string `json:"workloads"`
	MemModes   []string `json:"mem_modes"`
	Migrations []string `json:"migrations"`
	Policies   []string `json:"policies"`
	// Persistence lists the registry durability modes (Persist* constants).
	Persistence []string `json:"persistence"`
	LinkMbps    []int    `json:"link_mbps"`
	// DirtyRates are the candidate page-dirtying rates for live scenarios,
	// in pages/s.
	DirtyRates []int `json:"dirty_rates"`

	Hosts    Range `json:"hosts"`
	JobCount Range `json:"job_count"`
	// MaxGang bounds a job's gang size (further clamped to the fleet).
	MaxGang  int   `json:"max_gang"`
	StateMB  Range `json:"state_mb"`
	Duration Range `json:"duration_sec"`
	// MaxFaults bounds the fault-plan length (zero: fault-free scenarios).
	MaxFaults int `json:"max_faults"`
	// MaxCrashLoops bounds a registry-crash fault's back-to-back restart
	// count (zero: no registry-crash faults even under PersistFile).
	MaxCrashLoops int `json:"max_crash_loops"`
}

// DefaultSpace is the cross-product the fleet experiment sweeps: every
// workload, memory and migration mode, every stock policy, three link
// generations, small-to-medium fleets and queues, and fault plans long
// enough to overlap.
func DefaultSpace() Space {
	var policies []string
	for _, p := range jobs.Policies() {
		policies = append(policies, p.Name())
	}
	return Space{
		Workloads:     []string{WorkloadJacobi, WorkloadTree},
		MemModes:      []string{MemFlat, MemPaged, MemElastic},
		Migrations:    []string{MigrateLive, MigrateStopCopy},
		Policies:      policies,
		Persistence:   []string{PersistNone, PersistFile},
		LinkMbps:      []int{10, 100, 1000},
		DirtyRates:    []int{0, 50, 200, 800, 3200},
		Hosts:         Range{Min: 4, Max: 12},
		JobCount:      Range{Min: 3, Max: 10},
		MaxGang:       8,
		StateMB:       Range{Min: 1, Max: 64},
		Duration:      Range{Min: 240, Max: 600},
		MaxFaults:     6,
		MaxCrashLoops: 3,
	}
}

// contains reports list membership.
func contains[T comparable](list []T, v T) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// Check validates a scenario against the space: axis membership plus the
// coherence constraints that reject incoherent combos. The generator
// constructs scenarios that pass by design; Check is the proof obligation
// (and the property test's oracle).
func (sp Space) Check(s Scenario) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if !contains(sp.Workloads, s.Workload) {
		return fail("workload %q outside space", s.Workload)
	}
	if !contains(sp.MemModes, s.MemMode) {
		return fail("mem mode %q outside space", s.MemMode)
	}
	if !contains(sp.Migrations, s.Migration) {
		return fail("migration %q outside space", s.Migration)
	}
	if !contains(sp.Policies, s.Policy) {
		return fail("policy %q outside space", s.Policy)
	}
	if _, err := jobs.PolicyByName(s.Policy); err != nil {
		return fail("policy %q unknown to the planner", s.Policy)
	}
	// An empty persistence mode is a pre-axis scenario: storeless.
	persistence := s.Persistence
	if persistence == "" {
		persistence = PersistNone
	}
	if !contains(sp.Persistence, persistence) {
		return fail("persistence %q outside space", s.Persistence)
	}
	if !contains(sp.LinkMbps, s.LinkMbps) {
		return fail("link speed %d Mbps outside space", s.LinkMbps)
	}
	if !sp.Hosts.contains(s.Hosts) {
		return fail("fleet of %d outside space [%d,%d]", s.Hosts, sp.Hosts.Min, sp.Hosts.Max)
	}
	if !sp.JobCount.contains(len(s.Jobs)) {
		return fail("queue of %d outside space [%d,%d]", len(s.Jobs), sp.JobCount.Min, sp.JobCount.Max)
	}
	if !sp.StateMB.contains(s.StateMB) {
		return fail("state of %d MB outside space", s.StateMB)
	}
	if !sp.Duration.contains(s.DurationSec) {
		return fail("duration %d s outside space", s.DurationSec)
	}
	if s.SchedEverySec <= 0 {
		return fail("non-positive scheduling interval")
	}
	if len(s.Faults) > sp.MaxFaults {
		return fail("%d faults exceed the space's %d", len(s.Faults), sp.MaxFaults)
	}

	// Coherence: live migration needs a paged region to precopy — a flat
	// workload has no dirty-page tracking, so live × flat is incoherent.
	if s.Migration == MigrateLive && s.MemMode == MemFlat {
		return fail("live migration over flat memory (no paged region to precopy)")
	}
	// Dirty rates only mean something to the precopy model.
	if s.Migration != MigrateLive && s.DirtyPagesPerSec != 0 {
		return fail("dirty rate %d on a stop-and-copy scenario", s.DirtyPagesPerSec)
	}
	if s.Migration == MigrateLive && !contains(sp.DirtyRates, s.DirtyPagesPerSec) {
		return fail("dirty rate %d outside space", s.DirtyPagesPerSec)
	}

	jobsByName := make(map[string]JobSpec, len(s.Jobs))
	for _, j := range s.Jobs {
		if _, dup := jobsByName[j.Name]; dup {
			return fail("duplicate job name %q", j.Name)
		}
		jobsByName[j.Name] = j
		if j.Gang < 1 || j.Gang > sp.MaxGang {
			return fail("job %s gang %d outside [1,%d]", j.Name, j.Gang, sp.MaxGang)
		}
		// Gang placement is all-or-nothing: a gang wider than the fleet can
		// never admit.
		if j.Gang > s.Hosts {
			return fail("job %s gang %d exceeds the %d-host fleet", j.Name, j.Gang, s.Hosts)
		}
		if j.Big && j.Gang > (s.Hosts+3)/4 {
			return fail("job %s gang %d exceeds the big host class", j.Name, j.Gang)
		}
		// Elastic jobs need a resizable world — and a runtime that can
		// repartition one, which only the elastic memory mode provides.
		if j.Elastic && s.MemMode != MemElastic {
			return fail("job %s elastic under mem mode %q", j.Name, s.MemMode)
		}
		if j.MinWorld < 1 || j.MinWorld > j.Gang {
			return fail("job %s MinWorld %d outside [1,gang=%d]", j.Name, j.MinWorld, j.Gang)
		}
		if !j.Elastic && j.MinWorld != j.Gang {
			return fail("job %s rigid but MinWorld %d != gang %d", j.Name, j.MinWorld, j.Gang)
		}
		if j.ArrivalSec < 0 || j.ArrivalSec > s.DurationSec {
			return fail("job %s arrives at %d s, outside the %d s horizon", j.Name, j.ArrivalSec, s.DurationSec)
		}
		if j.WorkSec <= 0 {
			return fail("job %s has no work", j.Name)
		}
	}

	for i, f := range s.Faults {
		if f.AtSec < 0 || f.AtSec > s.DurationSec {
			return fail("fault %d at %d s, outside the %d s horizon", i, f.AtSec, s.DurationSec)
		}
		switch f.Kind {
		case FaultCrashHost:
			if !hostInFleet(f.Host, s.Hosts) {
				return fail("fault %d crashes %q, not in the fleet", i, f.Host)
			}
			if f.DownSec <= 0 {
				return fail("fault %d crash without an outage length", i)
			}
		case FaultLinkDegrade:
			if f.Factor <= 0 || f.Factor > 1 {
				return fail("fault %d degrade factor %g outside (0,1]", i, f.Factor)
			}
			if f.ForSec <= 0 {
				return fail("fault %d degrade without a window", i)
			}
		case FaultMigrate:
			if _, ok := jobsByName[f.Job]; !ok {
				return fail("fault %d migrates unknown job %q", i, f.Job)
			}
		case FaultResize:
			j, ok := jobsByName[f.Job]
			if !ok {
				return fail("fault %d resizes unknown job %q", i, f.Job)
			}
			if !j.Elastic {
				return fail("fault %d resizes rigid job %s", i, f.Job)
			}
			if f.World < j.MinWorld || f.World > j.Gang {
				return fail("fault %d resize world %d outside [%d,%d]", i, f.World, j.MinWorld, j.Gang)
			}
		case FaultRegistryCrash:
			// A crash-loop is a recovery drill: it only makes sense when the
			// registry has a durable store to recover from.
			if persistence != PersistFile {
				return fail("fault %d crash-loops a storeless registry", i)
			}
			if f.Loops < 1 || f.Loops > sp.MaxCrashLoops {
				return fail("fault %d loops %d outside [1,%d]", i, f.Loops, sp.MaxCrashLoops)
			}
		default:
			return fail("fault %d has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// hostInFleet reports whether name is one of the fleet's n hosts.
func hostInFleet(name string, n int) bool {
	for i := 0; i < n; i++ {
		if HostName(i) == name {
			return true
		}
	}
	return false
}
