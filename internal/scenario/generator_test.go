package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// marshalFleet renders a generated fleet as one JSON blob, the byte-level
// identity the determinism property compares.
func marshalFleet(t *testing.T, seed int64, n int) []byte {
	t.Helper()
	gen := NewGenerator(DefaultSpace(), seed)
	b, err := json.Marshal(gen.Generate(n))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGeneratorDeterministic: the same seed yields byte-identical scenario
// sequences across three independent generator lifetimes — the property the
// golden regression and the fleet reports stand on.
func TestGeneratorDeterministic(t *testing.T) {
	first := marshalFleet(t, 99, 50)
	for run := 1; run < 3; run++ {
		if got := marshalFleet(t, 99, 50); !bytes.Equal(got, first) {
			t.Fatalf("run %d: generated fleet differs from run 0 for the same seed", run)
		}
	}
}

// TestGeneratorSeedsDiffer: distinct seeds explore distinct fleets (a
// sanity check that the seed actually feeds the draw).
func TestGeneratorSeedsDiffer(t *testing.T) {
	if bytes.Equal(marshalFleet(t, 1, 10), marshalFleet(t, 2, 10)) {
		t.Fatal("seeds 1 and 2 generated identical fleets")
	}
}

// TestGeneratedScenariosCoherent: 1000 sampled scenarios all satisfy the
// space's coherence constraints — Check as the oracle, plus the headline
// constraints asserted explicitly: no live migration over flat memory,
// no gang wider than the fleet, no MinWorld above the gang.
func TestGeneratedScenariosCoherent(t *testing.T) {
	sp := DefaultSpace()
	gen := NewGenerator(sp, 4242)
	for i, s := range gen.Generate(1000) {
		if err := sp.Check(s); err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if s.Migration == MigrateLive && s.MemMode == MemFlat {
			t.Fatalf("scenario %d (%s): live migration over flat memory", i, s.Name)
		}
		for _, j := range s.Jobs {
			if j.Gang > s.Hosts {
				t.Fatalf("scenario %d job %s: gang %d exceeds %d hosts", i, j.Name, j.Gang, s.Hosts)
			}
			if j.MinWorld > j.Gang {
				t.Fatalf("scenario %d job %s: MinWorld %d above gang %d", i, j.Name, j.MinWorld, j.Gang)
			}
		}
	}
}

// TestSpaceCheckRejectsIncoherent: Check is a real gate, not a rubber
// stamp — hand-built violations of each coherence rule are rejected.
func TestSpaceCheckRejectsIncoherent(t *testing.T) {
	sp := DefaultSpace()
	base := func() Scenario {
		gen := NewGenerator(sp, 5)
		return gen.Next()
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"live-over-flat", func(s *Scenario) {
			s.Migration = MigrateLive
			s.MemMode = MemFlat
			s.DirtyPagesPerSec = 50
		}},
		{"gang-exceeds-fleet", func(s *Scenario) {
			s.Jobs[0].Gang = s.Hosts + 1
			s.Jobs[0].MinWorld = s.Jobs[0].Gang
		}},
		{"minworld-above-gang", func(s *Scenario) { s.Jobs[0].MinWorld = s.Jobs[0].Gang + 1 }},
		{"dirty-rate-on-stopcopy", func(s *Scenario) {
			s.Migration = MigrateStopCopy
			s.DirtyPagesPerSec = 50
		}},
		{"elastic-under-flat", func(s *Scenario) {
			s.MemMode = MemFlat
			s.Migration = MigrateStopCopy
			s.DirtyPagesPerSec = 0
			s.Jobs[0].Elastic = true
		}},
		{"crash-outside-fleet", func(s *Scenario) {
			s.Faults = []FaultSpec{{AtSec: 1, Kind: FaultCrashHost, Host: HostName(s.Hosts), DownSec: 10}}
		}},
		{"unknown-policy", func(s *Scenario) { s.Policy = "round-robin" }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		if err := sp.Check(s); err == nil {
			t.Errorf("%s: incoherent scenario accepted", tc.name)
		}
	}
}
