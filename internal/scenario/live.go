package scenario

import (
	"fmt"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/core"
	"autoresched/internal/hpcm"
	"autoresched/internal/jobs"
	"autoresched/internal/persist"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
	"autoresched/internal/workload"
)

// The live bridge: a generated scenario submitted through the real control
// plane. Where Runner models a fleet analytically (and byte-deterministic,
// for goldens), RunLive builds a core.System over a simulated cluster and
// pushes the scenario's job queue through System.Submit, so the generator's
// output exercises the live dispatcher, registry and rank launcher — the
// smoke check that generated scenarios are valid inputs to the real
// machinery, not just to the model.

// LiveOutcome is the result of one live run.
type LiveOutcome struct {
	Submitted int
	Completed int
	Failed    int
}

// rankMain builds one rank body for the scenario's workload axis. Both run
// a small registered-state computation so eviction checkpoints carry real
// state; the tree workload adds a deeper refinement pattern.
func rankMain(wl string) func(rank, gang int) hpcm.Main {
	iters := 12
	if wl == WorkloadTree {
		iters = 20
	}
	return func(rank, gang int) hpcm.Main {
		return workload.Jacobi(workload.JacobiConfig{
			N: 8, Iters: iters, PollEvery: 1, WorkPerCell: 200,
		})
	}
}

// RunLive executes the scenario's job queue on a live core.System over a
// scaled sim clock: the fleet is built host-for-host (HostName order), the
// scenario's policy drives the dispatcher, and every job goes in through
// System.Submit. Fault injection is the model runner's business; RunLive
// submits the queue as-is and waits for it to settle, bounded by timeout in
// virtual time.
func RunLive(s Scenario, scale float64, timeout time.Duration) (LiveOutcome, error) {
	var out LiveOutcome
	policy, err := jobs.PolicyByName(s.Policy)
	if err != nil {
		return out, fmt.Errorf("live: %w", err)
	}
	clock := vclock.Scaled(vclock.Epoch, scale)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: s.Bandwidth()})
	var names []string
	for i := 0; i < s.Hosts; i++ {
		name := HostName(i)
		if _, err := cl.AddHost(name, simnode.Config{Speed: 1e6, MemTotal: 128 << 20}); err != nil {
			return out, fmt.Errorf("live: building fleet: %w", err)
		}
		names = append(names, name)
	}
	opts := core.Options{
		Cluster:       cl,
		JobPolicy:     policy,
		SchedInterval: time.Duration(s.SchedEverySec) * time.Second,
	}
	if s.Persistence == PersistFile {
		// The live bridge runs in-memory; a MemStore stands in for the
		// file-backed store (same Store contract, same registry WAL path)
		// so durable scenarios exercise the journaling code live.
		opts.Store = persist.NewMemStore()
		opts.SnapshotEvery = 64
	}
	sys, err := core.New(opts)
	if err != nil {
		return out, fmt.Errorf("live: %w", err)
	}
	defer sys.Stop()
	if err := sys.AddNodes(names...); err != nil {
		return out, fmt.Errorf("live: %w", err)
	}

	var submitted []*jobs.Job
	for _, j := range s.Jobs {
		job, err := sys.Submit(jobs.Spec{
			Name:     j.Name,
			Priority: j.Priority,
			Gang:     j.Gang,
			Elastic:  j.Elastic,
			MinWorld: j.MinWorld,
			Rank:     rankMain(s.Workload),
		})
		if err != nil {
			return out, fmt.Errorf("live: submitting %s: %w", j.Name, err)
		}
		submitted = append(submitted, job)
		out.Submitted++
	}

	deadline := clock.NewTimer(timeout)
	defer deadline.Stop()
	for _, job := range submitted {
		select {
		case <-job.Done():
		case <-deadline.C:
			return out, fmt.Errorf("live: job %s stuck in %s at timeout", job.Name(), job.State())
		}
		if job.State() == jobs.StateCompleted {
			out.Completed++
		} else {
			out.Failed++
		}
	}
	return out, nil
}
