package scenario

import (
	"testing"

	"autoresched/internal/testutil"
)

func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
