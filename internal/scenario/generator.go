package scenario

import (
	"fmt"
	"math/rand"
)

// Generator draws scenarios from a Space, seeded and deterministic: the
// same (space, seed) pair yields the same scenario sequence on every run,
// which is what makes fleet reports reproducible and golden-diffable. The
// draw is constructive — dimensions are clamped into coherence as they are
// drawn rather than rejection-sampled — and every emitted scenario is
// re-checked against the space, so an incoherent combo is a bug, not a
// retry.
type Generator struct {
	space Space
	seed  int64
	rng   *rand.Rand
	next  int
}

// NewGenerator builds a generator over the space. The sequence is a pure
// function of (space, seed).
func NewGenerator(space Space, seed int64) *Generator {
	return &Generator{space: space, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// between draws uniformly from an inclusive range.
func (g *Generator) between(r Range) int {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + g.rng.Intn(r.Max-r.Min+1)
}

// pick draws uniformly from a non-empty list.
func pick[T any](g *Generator, list []T) T {
	return list[g.rng.Intn(len(list))]
}

// Next draws one scenario. It panics if the draw violates its own space —
// by construction it cannot, and the property test holds it to that.
func (g *Generator) Next() Scenario {
	idx := g.next
	g.next++
	sp := g.space

	s := Scenario{
		Name:          fmt.Sprintf("s%d-r%03d", g.seed, idx),
		Seed:          g.seed,
		Index:         idx,
		Workload:      pick(g, sp.Workloads),
		MemMode:       pick(g, sp.MemModes),
		Migration:     pick(g, sp.Migrations),
		Policy:        pick(g, sp.Policies),
		Persistence:   pick(g, sp.Persistence),
		LinkMbps:      pick(g, sp.LinkMbps),
		Hosts:         g.between(sp.Hosts),
		StateMB:       g.between(sp.StateMB),
		DurationSec:   g.between(sp.Duration),
		SchedEverySec: 1 + g.rng.Intn(5),
	}
	// Coherence by construction: live migration needs a paged region, so a
	// flat draw under MigrateLive upgrades to paged; dirty rates exist only
	// for the precopy model.
	if s.Migration == MigrateLive {
		if s.MemMode == MemFlat {
			s.MemMode = MemPaged
		}
		s.DirtyPagesPerSec = pick(g, sp.DirtyRates)
	}

	njobs := g.between(sp.JobCount)
	bigClass := (s.Hosts + 3) / 4
	gangs := []int{1, 1, 2, 2, 4, 8}
	for i := 0; i < njobs; i++ {
		j := JobSpec{
			Name:       fmt.Sprintf("job%02d", i),
			Priority:   g.rng.Intn(3),
			Gang:       pick(g, gangs),
			Big:        g.rng.Intn(8) == 0,
			ArrivalSec: g.rng.Intn(s.DurationSec + 1),
			WorkSec:    30 + g.rng.Intn(150),
		}
		// Gang placement is all-or-nothing; clamp the gang to what the
		// fleet (and, for big jobs, the big class) can ever hold.
		j.Gang = min(j.Gang, min(s.Hosts, sp.MaxGang))
		if j.Big {
			j.Gang = min(j.Gang, bigClass)
		}
		// Elasticity needs a runtime that can repartition the world.
		if s.MemMode == MemElastic && j.Gang >= 2 && g.rng.Intn(3) != 0 {
			j.Elastic = true
			j.MinWorld = 1 + g.rng.Intn(j.Gang)
		} else {
			j.MinWorld = j.Gang
		}
		s.Jobs = append(s.Jobs, j)
	}

	var elastic []JobSpec
	for _, j := range s.Jobs {
		if j.Elastic {
			elastic = append(elastic, j)
		}
	}
	nfaults := g.rng.Intn(sp.MaxFaults + 1)
	for i := 0; i < nfaults; i++ {
		at := g.rng.Intn(s.DurationSec + 1)
		kinds := []string{FaultCrashHost, FaultLinkDegrade, FaultMigrate}
		if len(elastic) > 0 {
			kinds = append(kinds, FaultResize)
		}
		// Crash-loops are a durable-recovery drill: only coherent when the
		// registry has a store to bootstrap from.
		if s.Persistence == PersistFile && sp.MaxCrashLoops > 0 {
			kinds = append(kinds, FaultRegistryCrash)
		}
		switch pick(g, kinds) {
		case FaultCrashHost:
			s.Faults = append(s.Faults, FaultSpec{
				AtSec:   at,
				Kind:    FaultCrashHost,
				Host:    HostName(g.rng.Intn(s.Hosts)),
				DownSec: 20 + g.rng.Intn(60),
			})
		case FaultLinkDegrade:
			s.Faults = append(s.Faults, FaultSpec{
				AtSec:  at,
				Kind:   FaultLinkDegrade,
				Factor: []float64{0.1, 0.25, 0.5}[g.rng.Intn(3)],
				ForSec: 30 + g.rng.Intn(90),
			})
		case FaultMigrate:
			s.Faults = append(s.Faults, FaultSpec{
				AtSec: at,
				Kind:  FaultMigrate,
				Job:   pick(g, s.Jobs).Name,
			})
		case FaultResize:
			j := pick(g, elastic)
			s.Faults = append(s.Faults, FaultSpec{
				AtSec: at,
				Kind:  FaultResize,
				Job:   j.Name,
				World: j.MinWorld + g.rng.Intn(j.Gang-j.MinWorld+1),
			})
		case FaultRegistryCrash:
			s.Faults = append(s.Faults, FaultSpec{
				AtSec: at,
				Kind:  FaultRegistryCrash,
				Loops: 1 + g.rng.Intn(sp.MaxCrashLoops),
			})
		}
	}

	if err := sp.Check(s); err != nil {
		panic(fmt.Sprintf("scenario: generator emitted an incoherent scenario: %v", err))
	}
	return s
}

// Generate draws n scenarios.
func (g *Generator) Generate(n int) []Scenario {
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}
