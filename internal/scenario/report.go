package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// The console report for -exp fleet: one line per run plus the fleet
// roll-up. Deterministic per seed, like everything else in the package.

// RenderFleet renders the fleet's console report.
func RenderFleet(seed int64, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet scenarios — seed %d, %d generated runs\n", seed, len(results))
	b.WriteString("run  scenario   policy               wl      mem      migration      hosts jobs done  makespan  faults\n")
	for i, r := range results {
		o := r.Outcome
		s := r.Scenario
		fmt.Fprintf(&b, "%03d  %-9s  %-19s  %-6s  %-7s  %-13s  %5d  %2d/%-2d %s  %7ds  %d\n",
			i, s.Name, s.Policy, s.Workload, s.MemMode, s.Migration,
			s.Hosts, o.JobsCompleted, o.JobsTotal, drainMark(o.Drained), o.MakespanSec, len(s.Faults))
	}
	sum := Summarize(seed, results)
	fmt.Fprintf(&b, "\ndrained %d/%d fleets  jobs %d/%d  admissions %d\n",
		sum.Drained, sum.Runs, sum.JobsCompleted, sum.JobsTotal, sum.Admissions)
	fmt.Fprintf(&b, "preemptions %s  migrations %s  resizes %d  churn requeue/shrink %d/%d\n",
		countMap(sum.Preemptions), countMap(sum.Migrations), sum.Resizes, sum.ChurnRequeues, sum.ChurnShrinks)
	fmt.Fprintf(&b, "downtime  count %d  p50 %s  p95 %s  p99 %s\n",
		sum.Downtime.Count, sum.Downtime.P50, sum.Downtime.P95, sum.Downtime.P99)
	fmt.Fprintf(&b, "migration count %d  p50 %s  p95 %s  p99 %s\n",
		sum.MigrationTotal.Count, sum.MigrationTotal.P50, sum.MigrationTotal.P95, sum.MigrationTotal.P99)
	return b.String()
}

func drainMark(drained bool) string {
	if drained {
		return "ok  "
	}
	return "CAP "
}

// countMap renders a mode->count map deterministically (sorted keys).
func countMap(m map[string]int) string {
	if len(m) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
