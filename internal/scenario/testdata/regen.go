// Regenerates the golden fleet reports for the pinned seed set:
//
//	go run ./internal/scenario/testdata/regen.go
//
// Run it after an intended behavior change in the generator, planner,
// migration model or fault handling, then review the golden diff like any
// other code change — the diff is the review surface. TestGoldenUpToDate
// points here whenever the committed goldens go stale.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"autoresched/internal/scenario"
)

func main() {
	// Anchor on this source file so the command works from any directory.
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		fmt.Fprintln(os.Stderr, "regen: cannot locate own source file")
		os.Exit(1)
	}
	testdata := filepath.Dir(self)
	for _, seed := range scenario.GoldenSeeds {
		content, err := scenario.GoldenFleet(seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "regen: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		path := filepath.Join(testdata, scenario.GoldenFile(seed))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "regen: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "regen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}
}
