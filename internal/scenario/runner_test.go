package scenario

import (
	"strings"
	"testing"
)

// TestRunnerDeterministic: executing the same generated fleet twice yields
// byte-identical flattened reports — every recorded quantity is a pure
// function of the seed.
func TestRunnerDeterministic(t *testing.T) {
	render := func() string {
		out, err := Flatten(7, RunFleet(DefaultSpace(), 7, 4))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := render()
	if second := render(); second != first {
		t.Fatal("same seed, different flattened report across two runs")
	}
}

// TestRunnerNoDoubleAssignment: across a wide seed sweep, no admission
// cycle ever leaves one host assigned to two running jobs — the runner
// panics on a violation, so completing the sweep is the assertion. This
// pins the fix for preemption-driven migrations, which once relocated a
// victim's rank onto a host the admission was about to occupy.
func TestRunnerNoDoubleAssignment(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		for _, r := range RunFleet(DefaultSpace(), seed, 4) {
			if r.Outcome.JobsTotal == 0 {
				t.Fatalf("seed %d: empty fleet run", seed)
			}
		}
	}
}

// TestRunnerDrainsBenignScenario: with no faults and a fleet wide enough
// for every gang, the whole queue completes and the makespan lands after
// the last arrival.
func TestRunnerDrainsBenignScenario(t *testing.T) {
	s := Scenario{
		Name: "benign", Workload: WorkloadJacobi, MemMode: MemPaged,
		Migration: MigrateStopCopy, Policy: "fifo", LinkMbps: 100,
		Hosts: 4, StateMB: 8, DurationSec: 240, SchedEverySec: 2,
		Jobs: []JobSpec{
			{Name: "a", Gang: 2, MinWorld: 2, ArrivalSec: 0, WorkSec: 30},
			{Name: "b", Gang: 1, MinWorld: 1, ArrivalSec: 10, WorkSec: 40},
		},
	}
	if err := testSpace().Check(s); err != nil {
		t.Fatal(err)
	}
	res := Runner{}.Run(s)
	if !res.Outcome.Drained || res.Outcome.JobsCompleted != 2 {
		t.Fatalf("outcome = %+v, want both jobs drained", res.Outcome)
	}
	if res.Outcome.MakespanSec <= 10 {
		t.Fatalf("makespan %d s, want past the last arrival", res.Outcome.MakespanSec)
	}
	if res.Outcome.Admissions != 2 {
		t.Fatalf("admissions = %d, want 2", res.Outcome.Admissions)
	}
}

// TestRunnerCrashRevivesAndRequeues: a crash outage requeues the rigid job
// running on the victim host, revives the host after DownSec, and the job
// still completes with its progress kept.
func TestRunnerCrashRevivesAndRequeues(t *testing.T) {
	s := Scenario{
		Name: "crash", Workload: WorkloadJacobi, MemMode: MemPaged,
		Migration: MigrateStopCopy, Policy: "fifo", LinkMbps: 100,
		Hosts: 4, StateMB: 8, DurationSec: 240, SchedEverySec: 1,
		Jobs: []JobSpec{
			{Name: "a", Gang: 1, MinWorld: 1, ArrivalSec: 0, WorkSec: 60},
		},
		Faults: []FaultSpec{
			{AtSec: 10, Kind: FaultCrashHost, Host: HostName(0), DownSec: 30},
		},
	}
	if err := testSpace().Check(s); err != nil {
		t.Fatal(err)
	}
	res := Runner{}.Run(s)
	if !res.Outcome.Drained {
		t.Fatalf("outcome = %+v, want drained", res.Outcome)
	}
	if res.Outcome.ChurnRequeues != 1 {
		t.Fatalf("churn requeues = %d, want 1", res.Outcome.ChurnRequeues)
	}
	digest := strings.Join(res.Schedule, "\n")
	for _, want := range []string{"crash-host host=h01", "revive-host host=h01", "churn-requeue job=a", "complete job=a"} {
		if !strings.Contains(digest, want) {
			t.Fatalf("schedule digest missing %q:\n%s", want, digest)
		}
	}
}

// TestRunnerForcedMigrationChargesDowntime: a forced migrate fault moves
// the running job and charges a non-zero freeze window into the downtime
// histogram.
func TestRunnerForcedMigrationChargesDowntime(t *testing.T) {
	s := Scenario{
		Name: "migrate", Workload: WorkloadJacobi, MemMode: MemPaged,
		Migration: MigrateLive, Policy: "fifo", LinkMbps: 100,
		Hosts: 4, StateMB: 8, DirtyPagesPerSec: 200, DurationSec: 240, SchedEverySec: 1,
		Jobs: []JobSpec{
			{Name: "a", Gang: 1, MinWorld: 1, ArrivalSec: 0, WorkSec: 60},
		},
		Faults: []FaultSpec{
			{AtSec: 10, Kind: FaultMigrate, Job: "a"},
		},
	}
	if err := testSpace().Check(s); err != nil {
		t.Fatal(err)
	}
	res := Runner{}.Run(s)
	if len(res.Spans) != 1 {
		t.Fatalf("spans = %v, want one migration", res.Spans)
	}
	if res.Spans[0].Mode != "precopy" && res.Spans[0].Mode != "fallback" {
		t.Fatalf("live scenario migrated in mode %q", res.Spans[0].Mode)
	}
	if res.Outcome.Downtime.Count != 1 || res.Outcome.Downtime.P50 == "0" {
		t.Fatalf("downtime = %+v, want one non-zero freeze window", res.Outcome.Downtime)
	}
	if !res.Outcome.Drained {
		t.Fatalf("outcome = %+v, want drained", res.Outcome)
	}
}

// TestRunnerResizeShrinksWorld: a resize fault against an elastic job lands
// at the target world and records a reshape span.
func TestRunnerResizeShrinksWorld(t *testing.T) {
	s := Scenario{
		Name: "resize", Workload: WorkloadJacobi, MemMode: MemElastic,
		Migration: MigrateStopCopy, Policy: "fifo", LinkMbps: 100,
		Hosts: 4, StateMB: 8, DurationSec: 240, SchedEverySec: 1,
		Jobs: []JobSpec{
			{Name: "a", Gang: 4, Elastic: true, MinWorld: 1, ArrivalSec: 0, WorkSec: 60},
		},
		Faults: []FaultSpec{
			{AtSec: 10, Kind: FaultResize, Job: "a", World: 2},
		},
	}
	if err := testSpace().Check(s); err != nil {
		t.Fatal(err)
	}
	res := Runner{}.Run(s)
	if len(res.Resizes) != 1 || res.Resizes[0].NewWorld != 2 {
		t.Fatalf("resizes = %+v, want one landing at world 2", res.Resizes)
	}
	if !res.Outcome.Drained {
		t.Fatalf("outcome = %+v, want drained", res.Outcome)
	}
}

// TestFaultPlanLowering: the scenario's fault schedule lowers onto the real
// faults DSL — crash outages become crash/revive pairs, degradations paired
// link-factor events — and renders deterministically.
func TestFaultPlanLowering(t *testing.T) {
	s := Scenario{
		Name:        "lower",
		DurationSec: 100,
		Hosts:       4,
		Faults: []FaultSpec{
			{AtSec: 5, Kind: FaultCrashHost, Host: "h02", DownSec: 20},
			{AtSec: 9, Kind: FaultLinkDegrade, Factor: 0.5, ForSec: 10},
			{AtSec: 12, Kind: FaultMigrate, Job: "a"},
		},
	}
	plan := s.FaultPlan()
	if len(plan.Events) != 5 {
		t.Fatalf("lowered to %d events, want 5 (crash+revive, degrade+restore, migrate)", len(plan.Events))
	}
	rendered := plan.Render()
	for _, want := range []string{"crash-host", "revive-host", "link-factor", "migrate"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("lowered plan missing %q:\n%s", want, rendered)
		}
	}
	if again := s.FaultPlan().Render(); again != rendered {
		t.Fatal("lowered plan renders differently across calls")
	}
}

// testSpace widens the default space's queue floor so the focused
// single-job scenarios above still type-check against it.
func testSpace() Space {
	sp := DefaultSpace()
	sp.JobCount.Min = 1
	return sp
}
