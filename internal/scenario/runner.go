package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"

	"autoresched/internal/jobs"
	"autoresched/internal/livemig"
	"autoresched/internal/metrics"
	"autoresched/internal/vclock"
)

// The fleet runner: executes one generated scenario as a discrete-tick
// simulation on the sim clock, one virtual second per tick. Admissions come
// from jobs.PlanCycle — the exact planner the live dispatcher executes —
// fault events from the scenario's schedule, and every migration or resize
// is costed through the livemig analytic model (which shares its
// Freeze/Fallback rule with the live driver). Everything is integer or
// pure-arithmetic work over the scenario value, so a Result, its schedule
// digest and its downtime quantiles are byte-identical across runs: the
// property the golden regression leans on.

// Nominal control-path constants matching the experiment cluster: dynamic
// process creation and the per-transfer handshake the live cluster charges.
const (
	spawnLatency = 300 * time.Millisecond
	handshake    = 2 * time.Millisecond
)

// MigrationSpan is one executed (modeled) migration.
type MigrationSpan struct {
	AtSec    int    `json:"at_sec"`
	Job      string `json:"job"`
	From     string `json:"from"`
	To       string `json:"to"`
	Mode     string `json:"mode"` // precopy | fallback | stop-and-copy
	Rounds   int    `json:"rounds,omitempty"`
	Downtime string `json:"downtime"`
	Total    string `json:"total"`
}

// ResizeSpan is one executed (modeled) elastic resize.
type ResizeSpan struct {
	AtSec    int    `json:"at_sec"`
	Job      string `json:"job"`
	OldWorld int    `json:"old_world"`
	NewWorld int    `json:"new_world"`
	Reshape  string `json:"reshape"`
}

// Quantiles is a deterministic histogram summary: counts plus bucket-bound
// quantiles formatted by metrics.FormatSeconds.
type Quantiles struct {
	Count uint64 `json:"count"`
	P50   string `json:"p50"`
	P95   string `json:"p95"`
	P99   string `json:"p99"`
}

// Outcome is the JSON-friendly result of one run: what the rundir's
// outcome.json holds and what the fleet summary aggregates.
type Outcome struct {
	Scenario      string `json:"scenario"`
	Policy        string `json:"policy"`
	JobsTotal     int    `json:"jobs_total"`
	JobsCompleted int    `json:"jobs_completed"`
	// Drained reports whether every job completed before the tick cap.
	Drained     bool `json:"drained"`
	MakespanSec int  `json:"makespan_sec"`
	Admissions  int  `json:"admissions"`
	// Preemptions counts planner evictions by mode (requeue/shrink/migrate).
	Preemptions map[string]int `json:"preemptions,omitempty"`
	// Migrations counts executed migrations by modeled mode.
	Migrations map[string]int `json:"migrations,omitempty"`
	Resizes    int            `json:"resizes,omitempty"`
	// ChurnRequeues and ChurnShrinks count host-crash victims.
	ChurnRequeues int `json:"churn_requeues,omitempty"`
	ChurnShrinks  int `json:"churn_shrinks,omitempty"`
	// Downtime summarises the fleet/downtime_seconds histogram: the freeze
	// windows of every executed migration.
	Downtime Quantiles `json:"downtime"`
	// MigrationTotal summarises end-to-end migration time (precopy
	// included), fleet/migration_seconds.
	MigrationTotal Quantiles `json:"migration_total"`
	// ResizeReshape summarises modeled reshape windows, fleet/resize_seconds.
	ResizeReshape Quantiles `json:"resize_reshape,omitempty"`
}

// Result is one executed scenario: the outcome, the event-schedule digest
// (one line per applied fault, admission, eviction, migration, resize and
// completion, stamped in virtual seconds) and the metrics registry holding
// the downtime/migration/resize histograms.
type Result struct {
	Scenario Scenario
	Outcome  Outcome
	Schedule []string
	Spans    []MigrationSpan
	Resizes  []ResizeSpan
	Metrics  *metrics.Registry
}

// Runner executes scenarios. The zero value is ready.
type Runner struct{}

// runJob is one job's simulation state.
type runJob struct {
	spec JobSpec
	seq  int64

	// progressMs is completed work in rank-milliseconds; the job finishes
	// at gang*workSec*1000.
	progressMs int64
	hosts      []string
	running    bool
	done       bool
	finish     int
	// pausedUntil stalls progress while a modeled migration or resize
	// freeze window is charged (ticks).
	pausedUntil int
}

func (j *runJob) view() jobs.JobView {
	return jobs.JobView{
		Name:     j.spec.Name,
		Priority: j.spec.Priority,
		Gang:     j.spec.Gang,
		Elastic:  j.spec.Elastic,
		MinWorld: j.spec.MinWorld,
		Seq:      j.seq,
		Hosts:    append([]string(nil), j.hosts...),
	}
}

func (j *runJob) workMs() int64 { return int64(j.spec.Gang) * int64(j.spec.WorkSec) * 1000 }

// Run executes one scenario to completion (or the tick cap) and returns its
// deterministic result.
func (Runner) Run(s Scenario) Result {
	clock := vclock.NewManual(vclock.Epoch)
	start := clock.Now()
	mreg := metrics.NewRegistry()
	downtimeHist := mreg.Histogram("fleet/downtime_seconds")
	migrHist := mreg.Histogram("fleet/migration_seconds")
	resizeHist := mreg.Histogram("fleet/resize_seconds")

	policy, err := jobs.PolicyByName(s.Policy)
	if err != nil {
		// Space.Check vouches for the policy; an unknown one here is a
		// programming error worth failing loudly on.
		panic(fmt.Sprintf("scenario: %v", err))
	}

	res := Result{
		Scenario: s,
		Metrics:  mreg,
		Outcome: Outcome{
			Scenario:    s.Name,
			Policy:      s.Policy,
			JobsTotal:   len(s.Jobs),
			Preemptions: map[string]int{},
			Migrations:  map[string]int{},
		},
	}
	now := func() int { return int(clock.Since(start) / time.Second) }
	digest := func(format string, args ...any) {
		res.Schedule = append(res.Schedule, fmt.Sprintf("t=%04ds ", now())+fmt.Sprintf(format, args...))
	}

	// Fleet state.
	hostNames := make([]string, s.Hosts)
	big := make(map[string]bool, s.Hosts)
	for i := range hostNames {
		hostNames[i] = HostName(i)
		if BigHost(i) {
			big[hostNames[i]] = true
		}
	}
	downUntil := map[string]int{}
	linkFactor := 1.0
	linkRestore := -1 // tick the current degrade window ends (-1: none)
	// schedBlackout is the tick the registry's crash-loop recovery ends:
	// admission cycles stall until then (the parent is mid-bootstrap).
	schedBlackout := 0

	// Jobs, in submission order: arrival second, then spec order.
	jobSet := make([]*runJob, len(s.Jobs))
	for i := range s.Jobs {
		jobSet[i] = &runJob{spec: s.Jobs[i]}
	}
	sort.SliceStable(jobSet, func(a, b int) bool { return jobSet[a].spec.ArrivalSec < jobSet[b].spec.ArrivalSec })
	for i, j := range jobSet {
		j.seq = int64(i + 1)
	}
	byName := make(map[string]*runJob, len(jobSet))
	for _, j := range jobSet {
		byName[j.spec.Name] = j
	}
	eligible := func(job, host string) bool {
		if j, ok := byName[job]; ok && j.spec.Big {
			return big[host]
		}
		return true
	}

	// The fault schedule in stable time order.
	fts := append([]FaultSpec(nil), s.Faults...)
	sort.SliceStable(fts, func(a, b int) bool { return fts[a].AtSec < fts[b].AtSec })
	nextFault := 0

	// bandwidth is the current effective migration-link speed.
	bandwidth := func() float64 { return s.Bandwidth() * linkFactor }

	// pause charges a freeze/reshape window against a job: it makes no
	// progress until the window has elapsed (rounded up to whole ticks).
	pause := func(j *runJob, tick int, d time.Duration) {
		ticks := int(math.Ceil(d.Seconds()))
		if ticks < 1 {
			ticks = 1
		}
		if until := tick + ticks; until > j.pausedUntil {
			j.pausedUntil = until
		}
	}

	// modelMigration computes the analytic cost of moving one rank over the
	// current link: mode, precopy rounds, freeze window and end-to-end time.
	modelMigration := func() (mode string, rounds int, downtime, total time.Duration) {
		sc := livemig.Scenario{
			TotalPages:   s.TotalPages(),
			PageBytes:    4096,
			Bandwidth:    bandwidth(),
			SpawnLatency: spawnLatency,
			Handshake:    handshake,
		}
		if s.Migration == MigrateLive {
			sc.DirtyPagesPerSec = float64(s.DirtyPagesPerSec)
			out := livemig.Simulate(livemig.Config{}, sc)
			mode, rounds, downtime = out.Mode, out.Rounds, out.Downtime
			total = time.Duration(out.PrecopySeconds*float64(time.Second)) + downtime
			return
		}
		out := livemig.Simulate(livemig.Config{}, sc)
		mode, downtime = MigrateStopCopy, out.StopCopy
		total = downtime
		return
	}

	// chargeMigration pays for one rank's move from->to: the job stalls for
	// the freeze window while the span, histograms and digest record it.
	// Rewriting the placement is the caller's job — forced migrations pick a
	// free destination, preemption-driven ones follow the planner's Moves.
	chargeMigration := func(j *runJob, tick int, from, to, why string) {
		mode, rounds, downtime, total := modelMigration()
		pause(j, tick, downtime)
		downtimeHist.Observe(downtime.Seconds())
		migrHist.Observe(total.Seconds())
		res.Outcome.Migrations[mode]++
		res.Spans = append(res.Spans, MigrationSpan{
			AtSec: tick, Job: j.spec.Name, From: from, To: to, Mode: mode, Rounds: rounds,
			Downtime: metrics.FormatSeconds(downtime.Seconds()),
			Total:    metrics.FormatSeconds(total.Seconds()),
		})
		digest("migrate job=%s %s->%s mode=%s rounds=%d downtime=%s (%s)",
			j.spec.Name, from, to, mode, rounds, downtime.Round(100*time.Microsecond), why)
	}

	// migrate models a forced migration: one rank of a running job moves to
	// the first free eligible host and pays the mode's freeze window.
	migrate := func(j *runJob, tick int, why string) {
		if !j.running || len(j.hosts) == 0 {
			digest("migrate job=%s skipped (%s)", j.spec.Name, "not running")
			return
		}
		from := j.hosts[len(j.hosts)-1]
		to := ""
		occupied := map[string]bool{}
		for _, r := range jobSet {
			for _, h := range r.hosts {
				occupied[h] = true
			}
		}
		for _, h := range hostNames {
			if _, down := downUntil[h]; down {
				continue
			}
			if !occupied[h] && eligible(j.spec.Name, h) {
				to = h
				break
			}
		}
		if to == "" {
			digest("migrate job=%s skipped (no free destination)", j.spec.Name)
			return
		}
		j.hosts[len(j.hosts)-1] = to
		chargeMigration(j, tick, from, to, why)
	}

	// resize models an elastic world change: shrink retires the highest
	// ranks, grow re-adopts free hosts; the reshape window moves the
	// repartitioned share of the state.
	resize := func(j *runJob, tick, world int) {
		if !j.running {
			digest("resize job=%s skipped (not running)", j.spec.Name)
			return
		}
		old := len(j.hosts)
		if world == old {
			digest("resize job=%s skipped (already at world %d)", j.spec.Name, world)
			return
		}
		grew := false
		if world < old {
			j.hosts = j.hosts[:world]
		} else {
			occupied := map[string]bool{}
			for _, r := range jobSet {
				for _, h := range r.hosts {
					occupied[h] = true
				}
			}
			for _, h := range hostNames {
				if len(j.hosts) == world {
					break
				}
				if _, down := downUntil[h]; down {
					continue
				}
				if !occupied[h] && eligible(j.spec.Name, h) {
					j.hosts = append(j.hosts, h)
					occupied[h] = true
					grew = true
				}
			}
			if len(j.hosts) == old {
				digest("resize job=%s skipped (no free hosts for world %d)", j.spec.Name, world)
				return
			}
		}
		moved := old - len(j.hosts)
		if moved < 0 {
			moved = -moved
		}
		bytesMoved := float64(int64(s.StateMB)<<20) * float64(moved) / float64(max(old, len(j.hosts)))
		reshape := handshake + time.Duration(bytesMoved/bandwidth()*float64(time.Second))
		if grew {
			reshape += spawnLatency
		}
		pause(j, tick, reshape)
		resizeHist.Observe(reshape.Seconds())
		res.Outcome.Resizes++
		res.Resizes = append(res.Resizes, ResizeSpan{
			AtSec: tick, Job: j.spec.Name, OldWorld: old, NewWorld: len(j.hosts),
			Reshape: metrics.FormatSeconds(reshape.Seconds()),
		})
		digest("resize job=%s %d->%d reshape=%s", j.spec.Name, old, len(j.hosts), reshape.Round(100*time.Microsecond))
	}

	// The drain cap: horizon plus generous room for the queue to empty. A
	// scenario that has not drained by then reports Drained=false.
	tickCap := s.DurationSec*6 + 600
	remaining := len(jobSet)

	for tick := 0; tick <= tickCap && remaining > 0; tick++ {
		if tick > 0 {
			clock.Advance(time.Second)
		}
		// 1. Revive hosts whose outage ended, restore degraded links.
		revived := []string{}
		for h, until := range downUntil {
			if until <= tick {
				revived = append(revived, h)
			}
		}
		sort.Strings(revived)
		for _, h := range revived {
			delete(downUntil, h)
			digest("revive-host host=%s", h)
		}
		if linkRestore >= 0 && linkRestore <= tick {
			linkFactor, linkRestore = 1.0, -1
			digest("link-restore factor=1")
		}
		// 2. Apply faults scheduled for this tick.
		for nextFault < len(fts) && fts[nextFault].AtSec == tick {
			f := fts[nextFault]
			nextFault++
			switch f.Kind {
			case FaultCrashHost:
				if _, down := downUntil[f.Host]; down {
					digest("crash-host host=%s skipped (already down)", f.Host)
					continue
				}
				downUntil[f.Host] = tick + f.DownSec
				digest("crash-host host=%s down=%ds", f.Host, f.DownSec)
				for _, j := range jobSet {
					if !j.running {
						continue
					}
					lost := 0
					for _, h := range j.hosts {
						if h == f.Host {
							lost++
						}
					}
					if lost == 0 {
						continue
					}
					if j.spec.Elastic && len(j.hosts)-lost >= j.spec.MinWorld {
						j.hosts = without(j.hosts, f.Host)
						res.Outcome.ChurnShrinks++
						digest("churn-shrink job=%s world=%d", j.spec.Name, len(j.hosts))
					} else {
						// The victim checkpointed at the previous tick:
						// requeue with progress intact. A freeze window
						// charged against the lost placement dies with it.
						j.hosts = nil
						j.running = false
						j.pausedUntil = 0
						res.Outcome.ChurnRequeues++
						digest("churn-requeue job=%s", j.spec.Name)
					}
				}
			case FaultLinkDegrade:
				linkFactor = f.Factor
				linkRestore = tick + f.ForSec
				digest("link-degrade factor=%g for=%ds", f.Factor, f.ForSec)
			case FaultMigrate:
				migrate(byName[f.Job], tick, "forced")
			case FaultResize:
				resize(byName[f.Job], tick, f.World)
			case FaultRegistryCrash:
				// A crash-looping parent is a control-plane blackout, not a
				// fleet outage: each bootstrap replays the change log (one
				// tick per loop) and admissions stall meanwhile. Running jobs
				// keep computing — the durable registry recovers their
				// registrations instead of forcing a re-registration storm.
				if until := tick + f.Loops; until > schedBlackout {
					schedBlackout = until
				}
				digest("registry-crash loops=%d sched-blackout=%ds", f.Loops, f.Loops)
			}
		}
		// 3. Plan one admission cycle over the live fleet (skipped while the
		// registry is mid-recovery from a crash-loop fault).
		if tick%s.SchedEverySec == 0 && tick >= schedBlackout {
			occ := map[string]string{}
			var running []jobs.JobView
			for _, j := range jobSet {
				if !j.running {
					continue
				}
				running = append(running, j.view())
				for _, h := range j.hosts {
					occ[h] = j.spec.Name
				}
			}
			var pending []jobs.JobView
			for _, j := range jobSet {
				if !j.done && !j.running && j.spec.ArrivalSec <= tick {
					pending = append(pending, j.view())
				}
			}
			var hosts []jobs.HostView
			for _, h := range hostNames {
				if _, down := downUntil[h]; down {
					continue
				}
				hosts = append(hosts, jobs.HostView{Name: h, Job: occ[h]})
			}
			view := jobs.ClusterView{Hosts: hosts, Running: running, Eligible: eligible}
			for _, adm := range jobs.PlanCycle(policy, pending, view) {
				for _, ev := range adm.Evictions {
					v := byName[ev.Job]
					res.Outcome.Preemptions[string(ev.Mode)]++
					switch ev.Mode {
					case jobs.EvictRequeue:
						// Any freeze window charged against the lost
						// placement dies with it.
						v.hosts = nil
						v.running = false
						v.pausedUntil = 0
						digest("evict job=%s mode=requeue for=%s", ev.Job, adm.Job)
					case jobs.EvictShrink:
						for _, h := range ev.Hosts {
							v.hosts = without(v.hosts, h)
						}
						digest("evict job=%s mode=shrink world=%d for=%s", ev.Job, len(v.hosts), adm.Job)
					case jobs.EvictMigrate:
						// Each contested rank live-migrates to its planned
						// destination and pays a real freeze window. The
						// planner already picked destinations clear of the
						// admission's hosts, so no new placement is chosen
						// here — choosing one could collide with the hosts
						// the admission below is about to occupy.
						moves := make([]string, 0, len(ev.Moves))
						for h := range ev.Moves {
							moves = append(moves, h)
						}
						sort.Strings(moves)
						digest("evict job=%s mode=migrate moved=%d for=%s", ev.Job, len(moves), adm.Job)
						for _, h := range moves {
							for i := range v.hosts {
								if v.hosts[i] == h {
									v.hosts[i] = ev.Moves[h]
								}
							}
							chargeMigration(v, tick, h, ev.Moves[h], "preempted")
						}
					}
				}
				j := byName[adm.Job]
				j.hosts = append([]string(nil), adm.Hosts...)
				j.running = true
				res.Outcome.Admissions++
				digest("admit job=%s gang=%d hosts=%v", adm.Job, j.spec.Gang, adm.Hosts)
			}
			// The planner contract: after a cycle no host carries two
			// running jobs. A violation is a programming error in the
			// planner or this runner's eviction bookkeeping — fail loudly
			// rather than pin a corrupt schedule into the goldens.
			claimed := map[string]string{}
			for _, j := range jobSet {
				if !j.running {
					continue
				}
				for _, h := range j.hosts {
					if other, dup := claimed[h]; dup {
						panic(fmt.Sprintf("scenario %s: t=%ds host %s assigned to both %s and %s",
							s.Name, tick, h, other, j.spec.Name))
					}
					claimed[h] = j.spec.Name
				}
			}
		}
		// 4. Advance every running, unpaused job by its live world.
		for _, j := range jobSet {
			if !j.running || tick < j.pausedUntil {
				continue
			}
			j.progressMs += int64(len(j.hosts)) * 1000
			if j.progressMs >= j.workMs() {
				j.running = false
				j.done = true
				j.hosts = nil
				j.finish = tick + 1
				remaining--
				digest("complete job=%s", j.spec.Name)
			}
		}
	}

	for _, j := range jobSet {
		if !j.done {
			continue
		}
		res.Outcome.JobsCompleted++
		if j.finish > res.Outcome.MakespanSec {
			res.Outcome.MakespanSec = j.finish
		}
	}
	res.Outcome.Drained = res.Outcome.JobsCompleted == len(jobSet)
	res.Outcome.Downtime = histQuantiles(downtimeHist)
	res.Outcome.MigrationTotal = histQuantiles(migrHist)
	res.Outcome.ResizeReshape = histQuantiles(resizeHist)
	return res
}

// histQuantiles summarises a histogram with deterministic bucket-bound
// quantiles.
func histQuantiles(h *metrics.Histogram) Quantiles {
	return Quantiles{
		Count: h.Count(),
		P50:   metrics.FormatSeconds(h.Quantile(0.50)),
		P95:   metrics.FormatSeconds(h.Quantile(0.95)),
		P99:   metrics.FormatSeconds(h.Quantile(0.99)),
	}
}

// without returns hosts minus the first occurrence of h, preserving order.
func without(hosts []string, h string) []string {
	for i, x := range hosts {
		if x == h {
			return append(hosts[:i:i], hosts[i+1:]...)
		}
	}
	return hosts
}
