package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkMutexHeld is a heuristic detector for blocking work inside a
// critical section: between an `x.Lock()` (or RLock) on a sync.Mutex /
// sync.RWMutex and its unlock — deferred unlocks hold to the end of the
// function — it flags
//
//   - channel send statements,
//   - calls into the net package, and
//   - calls to methods of internal/proto types (Conn/Client round trips),
//
// all of which can block indefinitely and, under a registry or monitor
// mutex, stall the whole control plane. The analysis is intra-function
// and tracks mutexes by receiver expression text, so it is a lint, not a
// proof; function literals are analysed independently (they run later,
// outside the section).
func checkMutexHeld(cfg Config, pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &mutexWalker{cfg: cfg, pkg: pkg}
			w.walkBody(fd.Body)
			findings = append(findings, w.findings...)
		}
	}
	return findings
}

type mutexWalker struct {
	cfg      Config
	pkg      *Package
	findings []Finding
	queue    []*ast.BlockStmt // function literal bodies, analysed fresh
}

// walkBody analyses one function body, then any function literals found
// inside it, each with an empty held set.
func (w *mutexWalker) walkBody(body *ast.BlockStmt) {
	w.walkStmts(body.List, map[string]bool{})
	for len(w.queue) > 0 {
		next := w.queue[0]
		w.queue = w.queue[1:]
		w.walkStmts(next.List, map[string]bool{})
	}
}

// walkStmts processes statements in order, tracking which mutexes are
// held. Branch bodies share the caller's held set: the tracking is a
// linear heuristic, not a dataflow analysis.
func (w *mutexWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		w.walkStmt(stmt, held)
	}
}

func (w *mutexWalker) walkStmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, locks, ok := w.mutexOp(s.X); ok {
			if locks {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the section open to the end of the
		// function, which is exactly the held state already tracked; a
		// deferred anything-else runs after the section and is not
		// scanned.
		return
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.queue = append(w.queue, lit.Body)
		}
		return
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.walkStmts(s.Body.List, held)
		if s.Else != nil {
			w.walkStmt(s.Else, held)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkStmts(s.Body.List, held)
		return
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkStmts(s.Body.List, held)
		return
	}
	w.scanNode(stmt, held)
}

// scanExpr scans one expression for violations and function literals.
func (w *mutexWalker) scanExpr(e ast.Expr, held map[string]bool) {
	if e != nil {
		w.scanNode(e, held)
	}
}

// scanNode inspects a subtree for blocking constructs (when a mutex is
// held) and queues function literals for independent analysis.
func (w *mutexWalker) scanNode(n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.queue = append(w.queue, x.Body)
			return false
		case *ast.SelectStmt:
			// A select with a default clause never blocks, so its send
			// headers are exempt; clause bodies are scanned normally.
			if hasDefault(x) {
				for _, clause := range x.Body.List {
					cc := clause.(*ast.CommClause)
					for _, stmt := range cc.Body {
						w.scanNode(stmt, held)
					}
				}
				return false
			}
			return true
		case *ast.SendStmt:
			if len(held) > 0 {
				w.report(x.Pos(), "channel send while a mutex is held")
			}
			return true
		case *ast.CallExpr:
			if key, locks, ok := w.mutexOp(x); ok {
				if locks {
					held[key] = true
				} else {
					delete(held, key)
				}
				return false
			}
			if len(held) > 0 {
				if fn := calleeOf(w.pkg, x); fn != nil && w.blocking(fn) {
					w.report(x.Pos(), "call to "+qualifiedName(fn)+" while a mutex is held")
				}
			}
		}
		return true
	})
}

func (w *mutexWalker) report(pos token.Pos, msg string) {
	w.findings = append(w.findings, Finding{
		Pos:   w.pkg.Fset.Position(pos),
		Check: "mutexheld",
		Msg:   msg,
	})
}

// hasDefault reports whether a select statement has a default clause.
func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blocking reports whether fn belongs to a package whose calls are
// treated as blocking. For methods, proto types (Conn, Client) are the
// interesting surface: a round trip under a registry mutex serialises
// the control plane on the network.
func (w *mutexWalker) blocking(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path == w.pkg.Path {
		// A blocking package's own helpers under its own mutexes are its
		// business (proto's client serialises the wire by design).
		return false
	}
	return matchAny(w.cfg.MutexBlockingPackages, path)
}

// mutexOp recognises x.Lock/RLock/Unlock/RUnlock calls on sync mutexes,
// returning the receiver's expression text as the tracking key.
func (w *mutexWalker) mutexOp(e ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	t := w.pkg.Info.Types[sel.X].Type
	if t == nil {
		return "", false, false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false, false
	}
	return types.ExprString(sel.X), locks, true
}
