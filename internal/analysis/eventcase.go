package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkEventCase guards the event vocabularies a runner can silently
// drop: a new faults.Kind, job state, or migration phase added without
// updating every switch is exactly the bug class that let a fresh event
// kind slip through a driver. Three switch shapes are checked:
//
//  1. A switch whose tag is a named constant type (string or integer
//     underlying) declared in an enum package (Config.EnumPackages, or
//     any package under analysis) must cover every declared constant of
//     that type, by value, or carry an explicit default.
//
//  2. A switch over a plain string that references two or more members
//     of one top-level const block (an enum-like family such as the
//     migration Phase* or scenario Fault* constants) must cover the
//     whole block, by value, or carry a default. Referencing a single
//     member is treated as an ordinary comparison, not an enum dispatch.
//
//  3. A type switch over an empty interface whose cases mention any of
//     the configured event payload types (Config.EventPayloadTypes) must
//     cover all of them or carry a default: an events.Event fan-out that
//     forgets a payload drops a whole event class.
//
// Coverage is by constant value, so a literal "crash-host" covers the
// FaultCrashHost member. Exhaustive switches need no default; adding one
// anyway is always accepted as the explicit statement "other kinds are
// ignored here".
func checkEventCase(cfg Config, mod *Module) []Finding {
	var findings []Finding
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch sw := n.(type) {
				case *ast.SwitchStmt:
					if f, ok := valueSwitchFinding(cfg, mod, pkg, sw); ok {
						findings = append(findings, f)
					}
				case *ast.TypeSwitchStmt:
					if f, ok := typeSwitchFinding(cfg, pkg, sw); ok {
						findings = append(findings, f)
					}
				}
				return true
			})
		}
	}
	return findings
}

// valueSwitchFinding checks one tagged value switch against modes 1 and 2.
func valueSwitchFinding(cfg Config, mod *Module, pkg *Package, sw *ast.SwitchStmt) (Finding, bool) {
	if sw.Tag == nil {
		return Finding{}, false
	}
	tagType := pkg.Info.Types[sw.Tag].Type
	if tagType == nil {
		return Finding{}, false
	}

	hasDefault := false
	var caseExprs []ast.Expr
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseExprs = append(caseExprs, cc.List...)
	}
	if hasDefault {
		return Finding{}, false
	}

	if named, ok := tagType.(*types.Named); ok && isEnumUnderlying(named.Underlying()) {
		return namedEnumFinding(cfg, mod, pkg, sw, named, caseExprs)
	}
	if isStringType(tagType) {
		return constGroupFinding(mod, pkg, sw, caseExprs)
	}
	return Finding{}, false
}

func isEnumUnderlying(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsString|types.IsInteger) != 0 && b.Info()&types.IsBoolean == 0
}

// namedEnumFinding handles mode 1: enumerate the constants of the tag's
// named type from its declaring package scope and demand value coverage.
func namedEnumFinding(cfg Config, mod *Module, pkg *Package, sw *ast.SwitchStmt, named *types.Named, caseExprs []ast.Expr) (Finding, bool) {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return Finding{}, false
	}
	declPath := obj.Pkg().Path()
	if !enumPackage(cfg, mod, declPath) {
		return Finding{}, false
	}

	type member struct {
		name  string
		value constant.Value
	}
	var members []member
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		members = append(members, member{name, c.Val()})
	}
	if len(members) < 2 {
		return Finding{}, false
	}

	covered := caseValues(pkg, caseExprs)
	var missing []string
	for _, m := range members {
		if !coveredValue(covered, m.value) {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return Finding{}, false
	}
	return Finding{
		Pos:   pkg.Fset.Position(sw.Pos()),
		Check: "eventcase",
		Msg: "switch over " + obj.Pkg().Name() + "." + obj.Name() + " misses " +
			strings.Join(missing, ", ") + "; add the cases or an explicit default",
	}, true
}

// constGroupFinding handles mode 2: a plain-string switch that dispatches
// over an enum-like const block.
func constGroupFinding(mod *Module, pkg *Package, sw *ast.SwitchStmt, caseExprs []ast.Expr) (Finding, bool) {
	// Which groups do the named case constants belong to, and how many
	// distinct members of each are referenced?
	type groupUse struct {
		group   *constGroup
		members map[string]bool
	}
	uses := make(map[*constGroup]*groupUse)
	var order []*constGroup
	for _, e := range caseExprs {
		c, key := namedConstOf(pkg, e)
		if c == nil {
			continue
		}
		g, ok := mod.constGroups[key]
		if !ok {
			continue
		}
		u := uses[g]
		if u == nil {
			u = &groupUse{group: g, members: make(map[string]bool)}
			uses[g] = u
			order = append(order, g)
		}
		u.members[key] = true
	}

	covered := caseValues(pkg, caseExprs)
	for _, g := range order {
		if len(uses[g].members) < 2 {
			continue
		}
		var missing []string
		for _, m := range g.members {
			if !coveredValue(covered, m.obj.Val()) {
				missing = append(missing, m.name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		return Finding{
			Pos:   pkg.Fset.Position(sw.Pos()),
			Check: "eventcase",
			Msg: "switch dispatches over the " + g.pkg.Types.Name() + " const family of " +
				missing[0] + " but misses " + strings.Join(missing, ", ") +
				"; add the cases or an explicit default",
		}, true
	}
	return Finding{}, false
}

// namedConstOf resolves a case expression to a named constant and its
// module-wide "pkgpath.Name" key.
func namedConstOf(pkg *Package, e ast.Expr) (*types.Const, string) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, ""
	}
	c, ok := pkg.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil {
		return nil, ""
	}
	return c, c.Pkg().Path() + "." + c.Name()
}

// caseValues collects the constant values of the case expressions.
func caseValues(pkg *Package, exprs []ast.Expr) []constant.Value {
	var vals []constant.Value
	for _, e := range exprs {
		if tv := pkg.Info.Types[e]; tv.Value != nil {
			vals = append(vals, tv.Value)
		}
	}
	return vals
}

func coveredValue(covered []constant.Value, v constant.Value) bool {
	for _, c := range covered {
		if constant.Compare(c, token.EQL, v) {
			return true
		}
	}
	return false
}

// enumPackage reports whether declPath declares checked enums: any
// configured enum package, or any package in the current module view
// (fixtures declare their own).
func enumPackage(cfg Config, mod *Module, declPath string) bool {
	if matchAny(cfg.EnumPackages, declPath) {
		return true
	}
	for _, pkg := range mod.Pkgs {
		if pkg.Path == declPath {
			return true
		}
	}
	return false
}

// typeSwitchFinding handles mode 3: payload fan-outs over any.
func typeSwitchFinding(cfg Config, pkg *Package, sw *ast.TypeSwitchStmt) (Finding, bool) {
	subject := typeSwitchSubject(sw)
	if subject == nil {
		return Finding{}, false
	}
	st := pkg.Info.Types[subject].Type
	iface, ok := st.(*types.Interface)
	if !ok {
		if named, isNamed := st.(*types.Named); isNamed {
			iface, ok = named.Underlying().(*types.Interface)
		}
	}
	if !ok || iface == nil || !iface.Empty() {
		return Finding{}, false
	}

	var caseKeys []string
	hasDefault := false
	for _, clause := range sw.Body.List {
		cc, isCase := clause.(*ast.CaseClause)
		if !isCase {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, te := range cc.List {
			t := pkg.Info.Types[te].Type
			if t == nil {
				continue
			}
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				caseKeys = append(caseKeys, named.Obj().Pkg().Path()+"."+named.Obj().Name())
			}
		}
	}
	if hasDefault {
		return Finding{}, false
	}

	matchesConfigured := func(key string) (string, bool) {
		for _, want := range cfg.EventPayloadTypes {
			dot := strings.LastIndex(want, ".")
			if dot < 0 {
				continue
			}
			pkgPat, typeName := want[:dot], want[dot+1:]
			kdot := strings.LastIndex(key, ".")
			if kdot < 0 {
				continue
			}
			if key[kdot+1:] == typeName && matchPackage(pkgPat, key[:kdot]) {
				return want, true
			}
		}
		return "", false
	}

	coveredPayloads := make(map[string]bool)
	engaged := false
	for _, k := range caseKeys {
		if want, ok := matchesConfigured(k); ok {
			engaged = true
			coveredPayloads[want] = true
		}
	}
	if !engaged {
		return Finding{}, false
	}
	var missing []string
	for _, want := range cfg.EventPayloadTypes {
		if !coveredPayloads[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) == 0 {
		return Finding{}, false
	}
	return Finding{
		Pos:   pkg.Fset.Position(sw.Pos()),
		Check: "eventcase",
		Msg: "type switch over an event payload misses " + strings.Join(missing, ", ") +
			"; add the cases or an explicit default",
	}, true
}

// typeSwitchSubject extracts x from `switch x.(type)` or
// `switch v := x.(type)`.
func typeSwitchSubject(sw *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}
