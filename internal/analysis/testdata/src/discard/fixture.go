// Fixture for the discarded-error check: calls into the control-plane
// packages (internal/proto here) must not drop their errors.
package discard

import (
	"io"

	"autoresched/internal/proto"
)

func blanked(w io.Writer, data []byte) {
	_ = proto.WriteFrame(w, data) // want `\[discardederr\] error returned by proto\.WriteFrame is assigned to _`
}

func bare(w io.Writer, data []byte) {
	proto.WriteFrame(w, data) // want `\[discardederr\] error returned by proto\.WriteFrame is dropped by a bare call`
}

func multi(c *proto.Client, m *proto.Message) *proto.Message {
	resp, _ := c.Call(m) // want `\[discardederr\] error returned by \(proto\.Client\)\.Call is assigned to _`
	return resp
}

// handled propagates the error: compliant.
func handled(w io.Writer, data []byte) error {
	return proto.WriteFrame(w, data)
}

// checked consumes the error: compliant.
func checked(r io.Reader) []byte {
	data, err := proto.ReadFrame(r)
	if err != nil {
		return nil
	}
	return data
}

// deferred teardown is exempt: defer c.Close() has no useful error path.
func deferred(c *proto.Client) {
	defer c.Close()
}
