// Fixture for the hotalloc call-graph check: a //hot:path function, and
// every module-internal function it reaches through static same-goroutine
// calls, must not allocate.
package hotalloc

import "fmt"

type payload struct{ v int }

var sink any

// consume is hot-reachable from Root but allocation-free itself; the
// boxing happens at Root's call site, not here.
func consume(v any) { sink = v }

// helper is reached from Root through a sync call edge, so its allocation
// is reported against the root.
func helper(n int) []byte {
	return make([]byte, n) // want `\[hotalloc\] make allocates on the hot path from hotalloc\.Root \(via hotalloc\.helper\)`
}

// amortized is reached only through a suppressed (cut) edge in Flush, so
// its allocation is not on any hot path.
func amortized(n int) []byte {
	return make([]byte, n)
}

// spawned runs on its own goroutine; hot propagation does not follow go
// edges (the go statement itself is the reported cost).
func spawned() {
	_ = make([]byte, 1)
}

// colder is never called from a hot root and may allocate freely.
func colder() []byte {
	return make([]byte, 8)
}

//hot:path
func Root(buf []byte, n int, s, t string) {
	_ = make([]int, n)          // want `\[hotalloc\] make allocates in //hot:path function hotalloc\.Root`
	_ = new(payload)            // want `\[hotalloc\] new allocates in //hot:path function hotalloc\.Root`
	buf = append(buf, 1)        // want `\[hotalloc\] append may grow the backing array in //hot:path function hotalloc\.Root`
	_ = &payload{v: n}          // want `\[hotalloc\] &-composite literal allocates in //hot:path function hotalloc\.Root`
	_ = []int{n}                // want `\[hotalloc\] slice literal allocates in //hot:path function hotalloc\.Root`
	_ = map[string]int{s: n}    // want `\[hotalloc\] map literal allocates in //hot:path function hotalloc\.Root`
	_ = s + t                   // want `\[hotalloc\] string concatenation allocates in //hot:path function hotalloc\.Root`
	_ = fmt.Sprintf("%d", n)    // want `\[hotalloc\] call to fmt\.Sprintf allocates in //hot:path function hotalloc\.Root`
	_ = func() int { return n } // want `\[hotalloc\] function literal allocates a closure in //hot:path function hotalloc\.Root`
	go spawned()                // want `\[hotalloc\] go statement allocates a goroutine in //hot:path function hotalloc\.Root`
	consume(n)                  // want `\[hotalloc\] value-to-interface conversion allocates \(argument boxed\) in //hot:path function hotalloc\.Root`
	_ = payload{v: n}           // compliant: a struct *value* literal stays on the stack
	_ = helper(n)
}

//hot:path
func Box(n int) any {
	return n // want `\[hotalloc\] value-to-interface conversion allocates \(returned as interface\) in //hot:path function hotalloc\.Box`
}

// Cold paths are exempt: a block ending in a non-nil error return or a
// panic may allocate to say why.
//
//hot:path
func Cold(ok bool, n int) error {
	if !ok {
		return fmt.Errorf("hotalloc: bad input %d", n)
	}
	if n < 0 {
		panic(fmt.Sprintf("hotalloc: negative %d", n))
	}
	return nil
}

// Classify's default clause is a cold case clause (it ends in a non-nil
// error return), so its fmt.Errorf is exempt too.
//
//hot:path
func Classify(kind string) error {
	switch kind {
	case "steady":
		return nil
	default:
		return fmt.Errorf("hotalloc: unknown kind %q", kind)
	}
}

// Flush cuts the edge to its amortised callee with a reasoned allowance:
// the declared batch boundary pays for everything behind it.
//
//hot:path
func Flush(n int) []byte {
	return amortized(n) //lint:allow hotalloc the grow is amortised over the batch
}
