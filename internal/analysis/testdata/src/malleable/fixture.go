// Fixture loaded as autoresched/internal/malleable: the malleability engine
// is inside the determinism fence — resize timing must come from the virtual
// clock and victim choices from seeded sources, so a wall-clock read or a
// global random draw slipped into the resize protocol must be reported. The
// engine also mixes a job mutex with phase-event channels, so a channel send
// under the lock (a resize-vs-crash deadlock in waiting) must be reported
// too.
package malleable

import (
	"math/rand"
	"sync"
	"time"
)

// ProposedAt stamps a proposal with the wall clock — the regression that
// would make quiesce-latency histograms diverge across runs.
func ProposedAt() time.Time {
	return time.Now() // want `\[determinism\] time\.Now reads the wall clock`
}

// DrainPause paces the drain's liveness poll on the real clock instead of
// the job's virtual clock.
func DrainPause() {
	time.Sleep(time.Millisecond) // want `\[determinism\] time\.Sleep reads the wall clock`
}

// PickVictim draws a retiring rank from the global wall-seeded source.
func PickVictim(world int) int {
	return rand.Intn(world) // want `\[determinism\] rand\.Intn draws from the global wall-seeded source`
}

// SeededVictim is fine: an explicitly seeded *rand.Rand is deterministic.
func SeededVictim(rng *rand.Rand, world int) int {
	return rng.Intn(world)
}

// job is a cut-down Job shape for the mutex analyzer.
type job struct {
	mu   sync.Mutex
	done chan struct{}
}

// settle sends the completion signal while holding the job mutex: any
// observer that locks the same mutex before draining the channel deadlocks
// the resize.
func (j *job) settle() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done <- struct{}{} // want `\[mutexheld\] channel send while a mutex is held`
}

// settleUnlocked is fine: the signal leaves after the critical section.
func (j *job) settleUnlocked() {
	j.mu.Lock()
	j.mu.Unlock()
	j.done <- struct{}{}
}
