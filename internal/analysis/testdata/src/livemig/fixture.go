// Fixture loaded as autoresched/internal/livemig: the live-migration engine
// is inside the determinism fence — precopy round pacing must come from the
// virtual clock and seeded sources, so a wall-clock read or a global random
// draw slipped into it must be reported.
package livemig

import (
	"math/rand"
	"time"
)

// RoundStamp reads the wall clock for a precopy round timestamp — the exact
// regression that would make round decisions diverge across runs.
func RoundStamp() time.Time {
	return time.Now() // want `\[determinism\] time\.Now reads the wall clock`
}

// Backoff sleeps on the real clock between rounds.
func Backoff() {
	time.Sleep(time.Millisecond) // want `\[determinism\] time\.Sleep reads the wall clock`
}

// PickPage draws a page index from the global wall-seeded source.
func PickPage(total int) int {
	return rand.Intn(total) // want `\[determinism\] rand\.Intn draws from the global wall-seeded source`
}

// SeededPick is fine: an explicitly seeded *rand.Rand is deterministic.
func SeededPick(rng *rand.Rand, total int) int {
	return rng.Intn(total)
}
