// Fixture loaded as autoresched/internal/scenario: the acceptance case for
// the scenario-diversity engine. The whole package's value is that a fleet
// report is a pure function of its seed — generator draws come from a
// seeded *rand.Rand and the runner's timestamps from a vclock.Manual — so
// a wall-clock read or a global-rand draw slipped into the package breaks
// the golden regression and must be reported.
package scenario

import (
	"math/rand"
	"time"
)

// DrawGang picks a gang size off the process-global, wall-seeded source:
// two fleet runs with the same seed would generate different scenarios,
// and every golden would flap.
func DrawGang() int {
	return 1 + rand.Intn(8) // want `\[determinism\] rand\.Intn draws from the global wall-seeded source`
}

// StampRun records a run timestamp off the wall clock instead of the
// runner's manual clock: rundir contents would differ byte-for-byte on
// every re-run.
func StampRun() time.Time {
	return time.Now() // want `\[determinism\] time\.Now reads the wall clock`
}

// SeededFleet is the package's actual idiom: an explicitly seeded source,
// deterministic per seed, which the determinism check accepts.
func SeededFleet(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(8)
	}
	return out
}
