// Fixture for the eventcase exhaustiveness check, covering all three
// switch shapes: named enum types, plain-string const families, and
// event payload type switches.
package eventcase

import (
	"autoresched/internal/faults"
	"autoresched/internal/hpcm"
	"autoresched/internal/jobs"
	"autoresched/internal/malleable"
	"autoresched/internal/registry"
)

// State is a fixture-local named enum (the declaring package is under
// analysis, so it is held to the same standard as configured packages).
type State int

const (
	StateIdle State = iota
	StateRun
	StateDone
)

func describe(s State) string {
	switch s { // want `\[eventcase\] switch over eventcase\.State misses StateDone; add the cases or an explicit default`
	case StateIdle:
		return "idle"
	case StateRun:
		return "run"
	}
	return "?"
}

// describeDefault is compliant: the default is the explicit statement
// that other states are ignored here.
func describeDefault(s State) string {
	switch s {
	case StateRun:
		return "run"
	default:
		return "other"
	}
}

// kindTier dispatches over the imported faults.Kind enum and forgets two
// members.
func kindTier(k faults.Kind) int {
	switch k { // want `\[eventcase\] switch over faults\.Kind misses KindHeal, KindReviveHost; add the cases or an explicit default`
	case faults.KindCrashHost, faults.KindRestartRegistry, faults.KindPartition:
		return 2
	case faults.KindLinkFactor, faults.KindDropStatus, faults.KindDupStatus, faults.KindDelayStatus:
		return 1
	case faults.KindMigrate, faults.KindCrashOnPhase, faults.KindResize,
		faults.KindCrashOnResizePhase, faults.KindSubmitJob, faults.KindKillOnCkpt,
		faults.KindCrashLoopRegistry, faults.KindTornWrite:
		return 0
	}
	return -1
}

// The phase vocabulary: one plain-string const family.
const (
	phasePrepare = "prepare"
	phaseCommit  = "commit"
	phaseAbort   = "abort"
)

// phaseStep references two family members, so it is an enum dispatch and
// must cover the third (or default).
func phaseStep(phase string) int {
	switch phase { // want `\[eventcase\] switch dispatches over the eventcase const family of phaseAbort but misses phaseAbort; add the cases or an explicit default`
	case phasePrepare:
		return 1
	case phaseCommit:
		return 2
	}
	return 0
}

// phaseStepLiteral is compliant: coverage is by value, so the literal
// "abort" covers phaseAbort.
func phaseStepLiteral(phase string) int {
	switch phase {
	case phasePrepare:
		return 1
	case phaseCommit:
		return 2
	case "abort":
		return 3
	}
	return 0
}

// isPrepare is compliant: referencing a single member is an ordinary
// comparison, not an enum dispatch.
func isPrepare(phase string) bool {
	switch phase {
	case phasePrepare:
		return true
	case "something-else":
		return false
	}
	return false
}

// payloadProc fans out over an event payload and forgets three of the
// four configured payload types.
func payloadProc(p any) string {
	switch e := p.(type) { // want `\[eventcase\] type switch over an event payload misses internal/hpcm\.CheckpointEvent, internal/malleable\.Event, internal/jobs\.Event, internal/registry\.RestartEvent; add the cases or an explicit default`
	case hpcm.MigrationEvent:
		return e.Proc
	}
	return ""
}

// payloadJob is compliant: every configured payload type is covered
// (pointers count for their element type).
func payloadJob(p any) string {
	switch e := p.(type) {
	case hpcm.MigrationEvent:
		return e.Proc
	case *hpcm.CheckpointEvent:
		return e.Proc
	case malleable.Event:
		return e.Job
	case jobs.Event:
		return e.Job
	case registry.RestartEvent:
		if e.Recovered {
			return "recovered"
		}
		return "cold"
	}
	return ""
}

// payloadIsResize is compliant: the default closes the fan-out.
func payloadIsResize(p any) bool {
	switch p.(type) {
	case malleable.Event:
		return true
	default:
		return false
	}
}
