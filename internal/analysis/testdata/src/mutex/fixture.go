// Fixture for the mutex-held blocking-call check.
package mutexdemo

import (
	"net"
	"sync"

	"autoresched/internal/proto"
)

type hub struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (h *hub) sendHeld() {
	h.mu.Lock()
	h.ch <- 1 // want `\[mutexheld\] channel send while a mutex is held`
	h.mu.Unlock()
}

// sendAfterUnlock is compliant: the section is closed before the send.
func (h *hub) sendAfterUnlock() {
	h.mu.Lock()
	h.mu.Unlock()
	h.ch <- 1
}

func (h *hub) dialHeld() (net.Conn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return net.Dial("tcp", "localhost:0") // want `\[mutexheld\] call to net\.Dial while a mutex is held`
}

func callHeld(c *proto.Client, m *proto.Message, mu *sync.Mutex) (*proto.Message, error) {
	mu.Lock()
	defer mu.Unlock()
	return c.Call(m) // want `\[mutexheld\] call to \(proto\.Client\)\.Call while a mutex is held`
}

// nonBlockingSend is compliant: a select with a default never blocks.
func (h *hub) nonBlockingSend() {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.ch <- 1:
	default:
	}
}

func (h *hub) readLockSend() {
	h.rw.RLock()
	h.ch <- 2 // want `\[mutexheld\] channel send while a mutex is held`
	h.rw.RUnlock()
}

// litRunsLater is compliant: the goroutine body runs outside the section.
func (h *hub) litRunsLater() {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() {
		h.ch <- 3
	}()
}
