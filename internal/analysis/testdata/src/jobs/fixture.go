// Fixture loaded as autoresched/internal/jobs: the acceptance case for the
// multi-job control plane. The queue's lifecycle timestamps and the
// policies' admission order must come from the injected sim clock and the
// submission sequence — a wall-clock read or a global-rand tiebreak
// slipped into the package must be reported, and a queue knob nobody
// consults is dead configuration.
package jobs

import (
	"math/rand"
	"time"
)

// Options configures the demo queue.
type Options struct {
	// MaxPending is read by full: live configuration.
	MaxPending int
	// GracePeriod is accepted but never consulted.
	GracePeriod time.Duration // want `\[optionsfield\] exported field Options\.GracePeriod is never read by jobs \(dead configuration\)`
}

func full(o Options, pending int) bool { return pending >= o.MaxPending }

// SubmittedAt stamps a submission off the wall clock instead of the
// queue's injected clock — the exact regression the determinism check
// exists to catch in this package.
func SubmittedAt() time.Time {
	return time.Now() // want `\[determinism\] time\.Now reads the wall clock`
}

// TieBreak orders two equal-priority jobs off the process-global,
// wall-seeded source: the admission order would differ run to run.
func TieBreak() bool {
	return rand.Intn(2) == 0 // want `\[determinism\] rand\.Intn draws from the global wall-seeded source`
}

// SeededShuffle is fine: an explicitly seeded source is deterministic, the
// multijob experiment's idiom.
func SeededShuffle(seed int64, names []string) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
}

// WaitedFor is fine: durations handed in from the sim clock are pure
// values.
func WaitedFor(started, submitted time.Time) time.Duration {
	return started.Sub(submitted)
}

var _ = full
