// Fixture for the lockorder call-graph check: the module-wide
// lock-acquisition graph must be cycle-free.
package lockorder

import "sync"

// A and B lock each other's mutexes in opposite orders — A.Step takes
// A.mu then B.mu directly, B.Step takes B.mu and then reaches A.mu
// through lockA's transitive acquire set. That is the classic two-lock
// deadlock, reported once at the earliest witnessing edge.
type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

func (a *A) Step() {
	a.mu.Lock()
	a.b.mu.Lock() // want `\[lockorder\] potential deadlock: lock-order cycle lockorder\.A\.mu -> lockorder\.B\.mu -> lockorder\.A\.mu`
	a.b.mu.Unlock()
	a.mu.Unlock()
}

func (b *B) Step() {
	b.mu.Lock()
	lockA(b.a)
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// Acct is the transfer deadlock: two instances of one type locked in one
// body with no ordering rule. Instance-blind keys make this a self-loop,
// which the check keeps (unlike same-key edges through calls).
type Acct struct {
	mu  sync.Mutex
	bal int
}

func transfer(from, to *Acct, n int) {
	from.mu.Lock()
	to.mu.Lock() // want `\[lockorder\] potential deadlock: lock-order cycle lockorder\.Acct\.mu -> lockorder\.Acct\.mu`
	from.bal -= n
	to.bal += n
	to.mu.Unlock()
	from.mu.Unlock()
}

// C and D are compliant: both paths agree on the C-before-D order, so the
// graph stays acyclic.
type C struct {
	mu sync.Mutex
	d  *D
}

type D struct{ mu sync.Mutex }

func (c *C) One() {
	c.mu.Lock()
	c.d.mu.Lock()
	c.d.mu.Unlock()
	c.mu.Unlock()
}

func (c *C) Two() {
	c.mu.Lock()
	lockD(c.d)
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

// Tree is compliant: the parent holds Tree.mu while the child locks "the
// same" field, but through a call that is almost always a different
// instance (parent/child shards), so the same-key edge is dropped.
type Tree struct {
	mu    sync.Mutex
	child *Tree
	n     int
}

func (t *Tree) Push() {
	t.mu.Lock()
	t.child.fill()
	t.mu.Unlock()
}

func (t *Tree) fill() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

// Local mutexes are scoped to their function: the opposite order against
// a field mutex in another function cannot close a cycle.
func localOrder(d *D) {
	var mu sync.Mutex
	mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	mu.Unlock()
}

func localOrderReversed(d *D) {
	var mu sync.Mutex
	d.mu.Lock()
	mu.Lock()
	mu.Unlock()
	d.mu.Unlock()
}
