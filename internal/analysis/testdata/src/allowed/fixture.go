// Fixture loaded as autoresched/cmd/demo: binaries are allowlisted for
// wall-clock use, so nothing here may be reported.
package main

import (
	"math/rand"
	"time"
)

func now() time.Time { return time.Now() }

func draw() int { return rand.Intn(6) }

func main() {
	_ = now()
	_ = draw()
}
