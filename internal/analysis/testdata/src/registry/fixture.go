// Fixture loaded as autoresched/internal/registry: the acceptance case for
// the determinism check — a wall-clock read slipped into the registry must
// be reported.
package registry

import (
	"math/rand"
	"time"
)

// Timestamp reads the wall clock directly — the exact regression the
// determinism check exists to catch.
func Timestamp() time.Time {
	return time.Now() // want `\[determinism\] time\.Now reads the wall clock`
}

// Pause sleeps on the real clock.
func Pause() {
	time.Sleep(time.Millisecond) // want `\[determinism\] time\.Sleep reads the wall clock`
}

// Draw uses the process-global, wall-seeded source.
func Draw() int {
	return rand.Intn(10) // want `\[determinism\] rand\.Intn draws from the global wall-seeded source`
}

// SeededDraw is fine: methods on an explicitly seeded *rand.Rand are
// deterministic.
func SeededDraw(rng *rand.Rand) int {
	return rng.Intn(10)
}

// DeadlinePassed is fine: time.Time methods are pure value operations.
func DeadlinePassed(deadline, now time.Time) bool {
	return now.After(deadline)
}

// AllowedTimestamp shows a reasoned site suppression surviving the check.
func AllowedTimestamp() time.Time {
	return time.Now() //lint:allow determinism fixture demonstrates a reasoned suppression
}
