// Fixture for suppression semantics. The expectations live in the test
// (TestSuppressionSemantics) rather than want comments, because a
// malformed //lint:allow is itself the finding under test and cannot
// share its line with a want marker.
package suppressdemo

import "time"

// stamp is suppressed with a reason: no finding survives.
func stamp() time.Time {
	return time.Now() //lint:allow determinism demo of a valid trailing suppression
}

// stampAbove is suppressed from the line above: no finding survives.
func stampAbove() time.Time {
	//lint:allow determinism demo of an above-line suppression
	return time.Now()
}

// stampBad has a reasonless suppression: the comment is reported and the
// finding it sits on survives.
func stampBad() time.Time {
	//lint:allow determinism
	return time.Now()
}

// stampWrong suppresses the wrong check: the determinism finding survives.
func stampWrong() time.Time {
	return time.Now() //lint:allow nilreceiver misdirected suppression
}

var _ = stamp
var _ = stampAbove
var _ = stampBad
var _ = stampWrong
