// Fixture for the options-hygiene check: an exported Options field the
// declaring package never reads is dead configuration.
package optdemo

// Options configures the demo component.
type Options struct {
	// Workers is read by apply: live configuration.
	Workers int
	// Verbose is accepted but never consulted.
	Verbose bool // want `\[optionsfield\] exported field Options\.Verbose is never read by optdemo \(dead configuration\)`

	// limit is unexported: out of scope.
	limit int
}

func apply(o Options) int {
	o.Verbose = false // a plain-assignment write does not count as a read
	return o.Workers
}

func setLimit(o *Options) { o.limit = 3 }

// Config-named structs are under the same rule as Options.
type Config struct {
	// Interval is read by tick: live configuration.
	Interval int
	// Burst is accepted but never consulted.
	Burst int // want `\[optionsfield\] exported field Config\.Burst is never read by optdemo \(dead configuration\)`
}

func tick(c Config) int { return c.Interval }

var _ = apply
var _ = setLimit
var _ = tick
