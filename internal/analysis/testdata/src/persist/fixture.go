// Fixture loaded as autoresched/internal/persist: the acceptance case for
// the durable control plane. The change-log's value is that replaying it is
// a pure function of its bytes — record timestamps come from the caller's
// vclock.Clock and sequence numbers from the store's own counter — so a
// wall-clock stamp or a global-rand draw inside the persistence layer would
// make recovered state differ from the state that was logged, and must be
// reported.
package persist

import (
	"math/rand"
	"time"
)

// StampRecord timestamps a change-log record off the wall clock instead of
// the registry's injected clock: replaying the log under virtual time would
// resurrect leases with wall-time LastSeen values and the recovered digest
// would never match the primary's.
func StampRecord() time.Time {
	return time.Now() // want `\[determinism\] time\.Now reads the wall clock`
}

// JitterSnapshot draws a snapshot-cadence jitter from the process-global,
// wall-seeded source: two same-seed runs would compact at different
// sequences and the chaos schedules would stop being byte-identical.
func JitterSnapshot(every int) int {
	return every + rand.Intn(8) // want `\[determinism\] rand\.Intn draws from the global wall-seeded source`
}

// NextSeq is the package's actual idiom: ordering comes from a monotonic
// sequence counter owned by the store, never from clocks, so replay order
// is the append order by construction.
func NextSeq(last uint64) uint64 {
	return last + 1
}

// StampFromClock is the compliant way to put time into a record: the caller
// supplies the instant (read off its vclock.Clock), and the store treats it
// as opaque payload.
func StampFromClock(at time.Time) int64 {
	return at.UnixNano()
}
