// Fixture loaded as autoresched/internal/metrics: every exported
// pointer-receiver method on an exported type must open with a
// nil-receiver guard.
package metrics

// Meter is an exported type with pointer-receiver methods.
type Meter struct{ v int }

// Value opens with the guard: compliant.
func (m *Meter) Value() int {
	if m == nil {
		return 0
	}
	return m.v
}

// Inverted guard order is also compliant.
func (m *Meter) Peek() int {
	if nil == m {
		return 0
	}
	return m.v
}

func (m *Meter) Add(d int) { // want `\[nilreceiver\] exported method \(\*Meter\)\.Add must begin with a nil-receiver guard`
	m.v += d
}

func (m *Meter) Reset() { // want `\[nilreceiver\] exported method \(\*Meter\)\.Reset must begin with a nil-receiver guard`
	v := 0
	if m == nil {
		return
	}
	m.v = v
}

func (*Meter) Kind() string { // want `\[nilreceiver\] exported method \(\*Meter\)\.Kind has an unnamed receiver`
	return "meter"
}

// Snapshot has a value receiver: a nil pointer cannot reach it.
func (m Meter) Snapshot() int { return m.v }

// bump is unexported: internal callers own the nil discipline.
func (m *Meter) bump() { m.v++ }

// gauge is unexported, so its methods are out of scope.
type gauge struct{ v int }

func (g *gauge) Set(v int) { g.v = v }

var _ = (&Meter{}).bump
var _ = (&gauge{}).Set
