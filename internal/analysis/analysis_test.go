package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// moduleRoot walks up from the test's working directory to the directory
// holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above test directory")
		}
		dir = parent
	}
}

// The module-wide load (go list -export -deps + type-check) is the
// expensive step, so every test shares one loader. The fixture packages
// type-check against the same dependency universe.
var (
	loadOnce sync.Once
	loader   *Loader
	modPkgs  []*Package
	loadErr  error
)

func sharedLoader(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	loadOnce.Do(func() {
		root := moduleRoot(t)
		loader, modPkgs, loadErr = NewLoader(root, []string{"./..."})
	})
	if loadErr != nil {
		t.Fatalf("loading module: %v", loadErr)
	}
	return loader, modPkgs
}

// TestModuleClean is the gate the CI target depends on: the repository's
// own packages must produce zero unsuppressed findings under the default
// config.
func TestModuleClean(t *testing.T) {
	_, pkgs := sharedLoader(t)
	findings := RunChecks(DefaultConfig(), pkgs)
	kept, _ := Filter(findings, pkgs)
	for _, f := range kept {
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// fixtures maps each testdata package to the import path it impersonates.
// The registry entry is the acceptance case: a time.Now() added to
// internal/registry must be reported.
var fixtures = []struct {
	dir        string
	importPath string
}{
	{"registry", "autoresched/internal/registry"},
	{"livemig", "autoresched/internal/livemig"},
	{"malleable", "autoresched/internal/malleable"},
	{"jobs", "autoresched/internal/jobs"},
	{"scenario", "autoresched/internal/scenario"},
	{"persist", "autoresched/internal/persist"},
	{"allowed", "autoresched/cmd/demo"},
	{"nilrecv", "autoresched/internal/metrics"},
	{"discard", "example/discard"},
	{"mutex", "example/mutexdemo"},
	{"options", "example/optdemo"},
	{"hotalloc", "example/hotalloc"},
	{"lockorder", "example/lockorder"},
	{"eventcase", "example/eventcase"},
}

func TestFixtures(t *testing.T) {
	l, _ := sharedLoader(t)
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			pkg, err := l.LoadDir(filepath.Join("testdata", "src", fx.dir), fx.importPath)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := RunChecks(DefaultConfig(), []*Package{pkg})
			kept, _ := Filter(findings, []*Package{pkg})
			matchWants(t, pkg, kept)
		})
	}
}

// want is one expectation parsed from a `// want `+"`regex`"+` comment,
// anchored to the line the comment sits on.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// matchWants checks findings against the fixture's want comments in both
// directions: every want must be matched by a finding on its line, and
// every finding must be expected by a want on its line.
func matchWants(t *testing.T, pkg *Package, findings []Finding) {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				pat, ok := parseWant(t, c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{
					file: pos.Filename,
					line: pos.Line,
					re:   regexp.MustCompile(pat),
				})
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.String()) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, no matching finding", w.file, w.line, w.re)
		}
	}
}

// parseWant extracts the pattern of a `// want "..."` (or backquoted)
// comment; non-want comments return ok=false.
func parseWant(t *testing.T, comment string) (string, bool) {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(comment, "//")), "want ")
	if !ok {
		return "", false
	}
	rest = strings.TrimSpace(rest)
	if len(rest) >= 2 && rest[0] == '`' && rest[len(rest)-1] == '`' {
		return rest[1 : len(rest)-1], true
	}
	s, err := strconv.Unquote(rest)
	if err != nil {
		t.Fatalf("malformed want comment %q: %v", comment, err)
	}
	return s, true
}

// TestSuppressionSemantics pins down the suppression rules on the
// suppress fixture: reasoned suppressions (trailing or above-line) hide
// their finding, a reasonless one is itself reported without hiding
// anything, and a wrong-check suppression hides nothing.
func TestSuppressionSemantics(t *testing.T) {
	l, _ := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "suppress"), "example/suppressdemo")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := RunChecks(DefaultConfig(), []*Package{pkg})
	kept, suppressed := Filter(findings, []*Package{pkg})

	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (trailing + above-line)", suppressed)
	}
	byCheck := map[string]int{}
	for _, f := range kept {
		byCheck[f.Check]++
	}
	if byCheck[CheckSuppression] != 1 {
		t.Errorf("suppression findings = %d, want 1 (the reasonless comment)", byCheck[CheckSuppression])
	}
	if byCheck["determinism"] != 2 {
		t.Errorf("surviving determinism findings = %d, want 2 (reasonless + wrong check)", byCheck["determinism"])
		for _, f := range kept {
			t.Logf("kept: %s", f)
		}
	}
}

// TestDisabledChecks verifies the config kill-switch: disabling
// determinism silences the registry fixture entirely.
func TestDisabledChecks(t *testing.T) {
	l, _ := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "registry"), "autoresched/internal/registry")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	cfg := DefaultConfig()
	cfg.DisabledChecks = []string{"determinism"}
	findings := RunChecks(cfg, []*Package{pkg})
	kept, _ := Filter(findings, []*Package{pkg})
	for _, f := range kept {
		t.Errorf("finding survived a disabled check: %s", f)
	}
}

func TestMatchPackage(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"internal/vclock", "autoresched/internal/vclock", true},
		{"internal/vclock", "internal/vclock", true},
		{"internal/vclock", "autoresched/internal/vclockx", false},
		{"cmd/...", "autoresched/cmd/reschedvet", true},
		{"cmd/...", "autoresched/cmd", true},
		{"cmd/...", "autoresched/internal/commander", false},
		{"net", "net", true},
		{"net", "net/http", false},
		{"internal/proto", "autoresched/internal/proto", true},
	}
	for _, c := range cases {
		if got := matchPackage(c.pattern, c.path); got != c.want {
			t.Errorf("matchPackage(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}
