package analysis

import (
	"go/ast"
)

// checkNilReceiver enforces the documented contract of the metrics
// package: components hold optional *Histogram/*Gauge/*Counters/... and
// call them unconditionally, so every exported method with a pointer
// receiver on an exported type must begin with a nil-receiver guard
//
//	if x == nil { ... }
//
// as its first statement. The guard-first shape (rather than mere nil
// safety) is required so the property stays trivially decidable and
// greppable.
func checkNilReceiver(cfg Config, pkg *Package) []Finding {
	if !matchAny(cfg.NilGuardPackages, pkg.Path) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			if !fd.Name.IsExported() {
				continue
			}
			star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
			if !ok {
				continue // value receiver: a nil pointer cannot reach it
			}
			base, ok := star.X.(*ast.Ident)
			if !ok || !base.IsExported() {
				continue // generic or unexported receiver type
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				findings = append(findings, Finding{
					Pos:   pkg.Fset.Position(fd.Pos()),
					Check: "nilreceiver",
					Msg: "exported method (*" + base.Name + ")." + fd.Name.Name +
						" has an unnamed receiver and so cannot nil-guard it",
				})
				continue
			}
			if !startsWithNilGuard(fd.Body, names[0].Name) {
				findings = append(findings, Finding{
					Pos:   pkg.Fset.Position(fd.Pos()),
					Check: "nilreceiver",
					Msg: "exported method (*" + base.Name + ")." + fd.Name.Name +
						" must begin with a nil-receiver guard (if " + names[0].Name + " == nil)",
				})
			}
		}
	}
	return findings
}

// startsWithNilGuard reports whether the body's first statement is an if
// statement comparing the receiver against nil.
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	cmp, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op.String() != "==" {
		return false
	}
	return isIdent(cmp.X, recv) && isIdent(cmp.Y, "nil") ||
		isIdent(cmp.X, "nil") && isIdent(cmp.Y, recv)
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
