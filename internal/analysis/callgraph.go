package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is the interprocedural view the call-graph checks run on: every
// loaded package plus an approximate static call graph over their declared
// functions. Functions are keyed by a stable string ("pkgpath.Func" or
// "pkgpath.Type.Method") rather than by *types.Func identity, because the
// loader type-checks each package from source while its module-internal
// dependencies arrive through compiled export data — the same function is
// a *different* types.Object in each importing package, but its key is
// identical everywhere.
//
// The graph is approximate in well-defined ways. It over-estimates:
// every syntactic call site becomes an edge, including calls that are
// dynamically unreachable, and function literals that are not launched
// with `go` are attributed to their enclosing declaration even when they
// only run as callbacks. It under-estimates: calls through interface
// values and function-typed variables resolve to no declared function and
// produce no edge, and calls into packages outside the loaded set
// (stdlib, export-data-only deps) are leaves. The checks built on top
// document how they lean on each side of that approximation.
type Module struct {
	Pkgs  []*Package
	Funcs map[string]*FuncInfo

	// constGroups indexes every top-level const declaration block with at
	// least two members, by the "pkgpath.ConstName" of each member. The
	// eventcase check treats such a block as an enum-like family.
	constGroups map[string]*constGroup
}

// FuncInfo is one declared function or method in a loaded package.
type FuncInfo struct {
	Key  string
	Pkg  *Package
	Decl *ast.FuncDecl
	// Hot records a `//hot:path` directive in the declaration's doc
	// comment: the function promises to stay allocation-free.
	Hot bool
	// Calls are the statically resolved call sites in the body, in source
	// order. Calls under a `go` statement (directly, or inside the body of
	// a `go func(){...}` literal) are marked Async: they run on another
	// goroutine and several checks must not propagate caller state across
	// them.
	Calls []CallSite
}

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee string // key of the called function, "" if unresolved
	Async  bool
}

// funcKey derives the module-wide key of a function object.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fn.Pkg().Path() + ".(" + t.String() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// hotDirective is the doc-comment marker for allocation-free functions.
const hotDirective = "//hot:path"

// isHotDecl reports whether the declaration carries a //hot:path line.
func isHotDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// BuildModule indexes the packages into a Module: function declarations,
// hot-path annotations, resolved call sites, and const groups.
func BuildModule(pkgs []*Package) *Module {
	mod := &Module{
		Pkgs:        pkgs,
		Funcs:       make(map[string]*FuncInfo),
		constGroups: make(map[string]*constGroup),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					mod.addFunc(pkg, d)
				case *ast.GenDecl:
					mod.addConstGroup(pkg, d)
				}
			}
		}
	}
	return mod
}

func (mod *Module) addFunc(pkg *Package, fd *ast.FuncDecl) {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	key := funcKey(fn)
	if key == "" || fd.Body == nil {
		return
	}
	fi := &FuncInfo{
		Key:  key,
		Pkg:  pkg,
		Decl: fd,
		Hot:  isHotDecl(fd),
	}
	collectCalls(pkg, fd.Body, false, &fi.Calls)
	mod.Funcs[key] = fi
}

// collectCalls walks a body recording resolved call sites. async is true
// inside go-statement subtrees: the spawned call itself, and everything in
// the body of a `go func(){...}` literal.
func collectCalls(pkg *Package, n ast.Node, async bool, out *[]CallSite) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				// The literal's body runs on the new goroutine.
				collectCalls(pkg, lit.Body, true, out)
			} else {
				*out = append(*out, CallSite{
					Call:   x.Call,
					Callee: funcKey(calleeOf(pkg, x.Call)),
					Async:  true,
				})
				for _, arg := range x.Call.Args {
					collectCalls(pkg, arg, async, out)
				}
			}
			return false
		case *ast.CallExpr:
			*out = append(*out, CallSite{
				Call:   x,
				Callee: funcKey(calleeOf(pkg, x)),
				Async:  async,
			})
		}
		return true
	})
}

// FuncsSorted returns the module's functions in key order, for
// deterministic iteration.
func (mod *Module) FuncsSorted() []*FuncInfo {
	keys := make([]string, 0, len(mod.Funcs))
	for k := range mod.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fis := make([]*FuncInfo, len(keys))
	for i, k := range keys {
		fis[i] = mod.Funcs[k]
	}
	return fis
}

// displayKey shortens a function key to "pkgname.Type.Method" for
// messages: the last path segment of the package plus the rest of the key.
func displayKey(key string) string {
	dot := -1
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			dot = i
		}
	}
	return key[dot+1:]
}

// constGroup is one enum-like top-level const block.
type constGroup struct {
	pkg     *Package
	members []constMember
}

type constMember struct {
	name string
	obj  *types.Const
}

// addConstGroup indexes a top-level `const (...)` block with >= 2 named
// members as an enum-like family. Blank and single-const declarations are
// ignored; so are grouped consts of mixed unrelated use — the eventcase
// check only engages when a switch references two or more members of the
// same block, which keeps loose groupings from firing.
func (mod *Module) addConstGroup(pkg *Package, d *ast.GenDecl) {
	if d.Tok != token.CONST {
		return
	}
	var g constGroup
	g.pkg = pkg
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			if c, ok := pkg.Info.Defs[name].(*types.Const); ok {
				g.members = append(g.members, constMember{name: name.Name, obj: c})
			}
		}
	}
	if len(g.members) < 2 {
		return
	}
	gp := &g
	for _, m := range g.members {
		mod.constGroups[pkg.Path+"."+m.name] = gp
	}
}

// suppressedLines indexes, per filename, the lines covered by a
// //lint:allow comment for the given check (the comment's own line and
// the line after it — the same window Filter applies to findings). The
// hotalloc check uses this to let a reasoned suppression on a *call site*
// cut the traversal edge, not just hide a finding.
func (mod *Module) suppressedLines(check string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			sups, _ := suppressionsOf(pkg.Fset, file)
			name := pkg.Fset.Position(file.Pos()).Filename
			for _, s := range sups {
				if s.check != check {
					continue
				}
				lines := out[name]
				if lines == nil {
					lines = make(map[int]bool)
					out[name] = lines
				}
				lines[s.line] = true
				lines[s.line+1] = true
			}
		}
	}
	return out
}
