package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package entry points that read or schedule
// against the wall clock. Sim-path code must route them through
// vclock.Clock so scaled and manual clocks stay authoritative.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions that
// draw from the process-global, wall-seeded source. Deterministic code
// must use an explicitly seeded *rand.Rand instead; rand.New/NewSource
// and methods on *rand.Rand are fine.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// checkDeterminism flags direct wall-clock reads (time.Now and friends)
// and draws from the global math/rand source outside the allowlisted
// packages. The chaos/scale repro is byte-deterministic per seed only
// because every sim-path component takes a vclock.Clock and a seeded
// PRNG; this check keeps it that way.
func checkDeterminism(cfg Config, pkg *Package) []Finding {
	if matchAny(cfg.AllowClockPackages, pkg.Path) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
				// Methods are fine: *rand.Rand draws are seeded by whoever
				// built the Rand, and time.Time methods are pure.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					findings = append(findings, Finding{
						Pos:   pkg.Fset.Position(sel.Pos()),
						Check: "determinism",
						Msg:   "time." + fn.Name() + " reads the wall clock; sim-path code must use vclock.Clock",
					})
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					findings = append(findings, Finding{
						Pos:   pkg.Fset.Position(sel.Pos()),
						Check: "determinism",
						Msg:   "rand." + fn.Name() + " draws from the global wall-seeded source; use a rand.New(rand.NewSource(seed))",
					})
				}
			}
			return true
		})
	}
	return findings
}
