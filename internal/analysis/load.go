package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package: the unit a Check runs on.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without golang.org/x/tools: the
// go command supplies compiled export data for every dependency (via
// `go list -export -deps`), and go/importer's gc importer reads it through
// a lookup function. Only the packages under analysis are type-checked
// from source, so the load cost stays proportional to the module, not its
// transitive closure.
//
// Test files are not loaded: the invariants the checks enforce are about
// runtime code, and the determinism policy explicitly allowlists *_test.go.
type Loader struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// NewLoader runs `go list -export` over patterns in dir and type-checks
// every matched non-dependency package, returning them in listing order.
// The returned Loader can then type-check extra out-of-tree package
// directories (fixtures) against the same dependency universe.
func NewLoader(dir string, patterns []string) (*Loader, []*Package, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}

	l := &Loader{
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)

	var targets []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list -export: decoding output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := l.load(t.ImportPath, files)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return l, pkgs, nil
}

// lookup feeds the gc importer the export data file of an import path.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q (not in the dependency graph of the listed patterns)", path)
	}
	return os.Open(f)
}

// LoadDir parses every non-test .go file in dir as one package with the
// given import path and type-checks it. Fixture tests use this to check
// files that are outside the module's package graph; the synthetic import
// path lets a fixture impersonate any package the config treats specially.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return l.load(importPath, files)
}

// load parses and type-checks one package from explicit file paths.
func (l *Loader) load(importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, typeErrs[0])
	}
	return &Package{
		Path:  importPath,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
