package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// checkLockOrder lifts mutexheld's per-function held tracking into a
// module-global lock-acquisition graph and reports cycles as potential
// deadlocks. Mutexes are identified structurally, not per instance:
//
//   - a field mutex is "pkg.Type.field" (every *Registry shares one node),
//   - a package-level mutex is "pkg.var",
//   - a function-local mutex is scoped to its function (it can only form
//     a cycle with edges inside that same function).
//
// An edge A -> B means some goroutine can acquire B while holding A:
// either directly in one body, or because a call made under A reaches a
// function whose transitive (same-goroutine) acquire set contains B. The
// transitive sets are a fixpoint over the static call graph; calls under
// `go` are excluded (the spawned goroutine holds nothing of the
// caller's), and RLock counts as Lock (read-write cycles still deadlock
// against writers).
//
// Because identity is per type.field rather than per instance, an edge
// A -> A from a *callee* (parent/child registries locking the same field)
// would be pure noise and is dropped; a direct A -> A in one body (two
// instances of one type locked without an ordering rule) is kept — that
// is the classic account-transfer deadlock.
func checkLockOrder(cfg Config, mod *Module) []Finding {
	g := &lockGraph{
		edges:    make(map[string]map[string]token.Pos),
		acquires: make(map[string]map[string]bool),
		calls:    make(map[string]map[string]bool),
	}
	for _, fi := range mod.FuncsSorted() {
		w := &lockOrderWalker{pkg: fi.Pkg, fnKey: fi.Key, graph: g}
		w.walkBody(fi.Decl.Body, false)
	}
	g.propagate()
	g.resolvePending()
	return g.cycleFindings(mod)
}

// lockGraph accumulates the module-wide acquisition graph.
type lockGraph struct {
	edges map[string]map[string]token.Pos // lock -> lock -> earliest witness
	// acquires and calls are the per-function summaries the fixpoint runs
	// on: direct (same-goroutine) lock acquisitions, and sync callees.
	acquires map[string]map[string]bool
	calls    map[string]map[string]bool
	trans    map[string]map[string]bool
	pending  []pendingCall
}

// pendingCall is a module-internal call made while locks were held; its
// edges are resolved once transitive acquire sets are known.
type pendingCall struct {
	held   []string
	callee string
	pos    token.Pos
}

func (g *lockGraph) addEdge(a, b string, pos token.Pos) {
	if a == "" || b == "" {
		return
	}
	m := g.edges[a]
	if m == nil {
		m = make(map[string]token.Pos)
		g.edges[a] = m
	}
	if old, ok := m[b]; !ok || pos < old {
		m[b] = pos
	}
}

func (g *lockGraph) record(fn, lock string) {
	m := g.acquires[fn]
	if m == nil {
		m = make(map[string]bool)
		g.acquires[fn] = m
	}
	m[lock] = true
}

func (g *lockGraph) recordCall(fn, callee string) {
	m := g.calls[fn]
	if m == nil {
		m = make(map[string]bool)
		g.calls[fn] = m
	}
	m[callee] = true
}

// propagate computes the transitive acquire set of every function: its
// own acquisitions plus everything its sync callees can acquire.
func (g *lockGraph) propagate() {
	g.trans = make(map[string]map[string]bool, len(g.acquires))
	for fn, locks := range g.acquires {
		m := make(map[string]bool, len(locks))
		for l := range locks {
			m[l] = true
		}
		g.trans[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range g.calls {
			for callee := range callees {
				for l := range g.trans[callee] {
					if !g.trans[fn][l] {
						if g.trans[fn] == nil {
							g.trans[fn] = make(map[string]bool)
						}
						g.trans[fn][l] = true
						changed = true
					}
				}
			}
		}
	}
}

// resolvePending turns held-across-call records into edges using the
// callee's transitive acquire set. Same-key edges are dropped here: the
// callee locking "the same" mutex is usually a different instance
// (parent/child shards), which instance-blind keys cannot distinguish.
func (g *lockGraph) resolvePending() {
	for _, pc := range g.pending {
		for l := range g.trans[pc.callee] {
			for _, h := range pc.held {
				if h != l {
					g.addEdge(h, l, pc.pos)
				}
			}
		}
	}
}

// cycleFindings runs SCC detection over the edge graph and reports one
// finding per cycle, anchored at the earliest witnessing edge.
func (g *lockGraph) cycleFindings(mod *Module) []Finding {
	nodes := make([]string, 0, len(g.edges))
	seen := make(map[string]bool)
	for a, m := range g.edges {
		if !seen[a] {
			seen[a] = true
			nodes = append(nodes, a)
		}
		for b := range m {
			if !seen[b] {
				seen[b] = true
				nodes = append(nodes, b)
			}
		}
	}
	sort.Strings(nodes)

	var findings []Finding
	fset := fsetOf(mod)
	for _, scc := range stronglyConnected(nodes, g.edges) {
		cycle := g.shortestCycle(scc)
		if cycle == nil {
			continue
		}
		var path string
		var witnesses string
		for i := 0; i < len(cycle)-1; i++ {
			a, b := cycle[i], cycle[i+1]
			if i > 0 {
				witnesses += ", "
			}
			pos := fset.Position(g.edges[a][b])
			witnesses += fmt.Sprintf("%s -> %s at %s:%d", displayKey(a), displayKey(b),
				filepath.Base(pos.Filename), pos.Line)
			path += displayKey(a) + " -> "
		}
		path += displayKey(cycle[len(cycle)-1])
		findings = append(findings, Finding{
			Pos:   fset.Position(g.edges[cycle[0]][cycle[1]]),
			Check: "lockorder",
			Msg:   "potential deadlock: lock-order cycle " + path + " (" + witnesses + ")",
		})
	}
	return findings
}

// shortestCycle finds a minimal cycle through the SCC's smallest node
// (nil when the SCC is a single node without a self-loop).
func (g *lockGraph) shortestCycle(scc []string) []string {
	sort.Strings(scc)
	start := scc[0]
	if len(scc) == 1 {
		if _, self := g.edges[start][start]; self {
			return []string{start, start}
		}
		return nil
	}
	in := make(map[string]bool, len(scc))
	for _, n := range scc {
		in[n] = true
	}
	// BFS from start back to start, neighbours in sorted order for
	// determinism.
	prev := map[string]string{}
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var nbrs []string
		for b := range g.edges[cur] {
			if in[b] {
				nbrs = append(nbrs, b)
			}
		}
		sort.Strings(nbrs)
		for _, b := range nbrs {
			if b == start {
				path := []string{start}
				for c := cur; c != start; c = prev[c] {
					path = append(path, c)
				}
				if cur != start {
					path = append(path, start)
				}
				// path is reversed tail-first; rebuild forward.
				fwd := make([]string, 0, len(path)+1)
				fwd = append(fwd, start)
				for i := len(path) - 2; i >= 0; i-- {
					fwd = append(fwd, path[i])
				}
				fwd = append(fwd, start)
				return fwd
			}
			if !visited[b] {
				visited[b] = true
				prev[b] = cur
				queue = append(queue, b)
			}
		}
	}
	return nil
}

// stronglyConnected is Tarjan's algorithm, iterative-free (the graphs
// here are tiny), returning only components that can contain a cycle.
func stronglyConnected(nodes []string, edges map[string]map[string]token.Pos) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var next int
	var out [][]string

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range edges[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			_, self := edges[v][v]
			if len(scc) > 1 || self {
				out = append(out, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// fsetOf returns the module's shared FileSet (every loaded package comes
// from one Loader, so any package's fset positions all tokens).
func fsetOf(mod *Module) *token.FileSet {
	if len(mod.Pkgs) > 0 {
		return mod.Pkgs[0].Fset
	}
	return token.NewFileSet()
}

// lockOrderWalker tracks held locks through one function body, in the
// same linear-heuristic style as mutexheld.
type lockOrderWalker struct {
	pkg   *Package
	fnKey string
	graph *lockGraph
	queue []asyncBody
}

type asyncBody struct {
	body  *ast.BlockStmt
	async bool
}

func (w *lockOrderWalker) walkBody(body *ast.BlockStmt, async bool) {
	w.walkStmts(body.List, map[string]bool{}, async)
	for len(w.queue) > 0 {
		next := w.queue[0]
		w.queue = w.queue[1:]
		w.walkStmts(next.body.List, map[string]bool{}, next.async)
	}
}

func (w *lockOrderWalker) walkStmts(stmts []ast.Stmt, held map[string]bool, async bool) {
	for _, stmt := range stmts {
		w.walkStmt(stmt, held, async)
	}
}

func (w *lockOrderWalker) walkStmt(stmt ast.Stmt, held map[string]bool, async bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if w.handleOp(s.X, held, async) {
			return
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the section open, which matches the held
		// tracking; deferred closures run during unwinding and are not
		// ordered against the body.
		return
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.queue = append(w.queue, asyncBody{lit.Body, true})
		}
		// A direct `go f()` acquires nothing on this goroutine.
		return
	case *ast.BlockStmt:
		w.walkStmts(s.List, held, async)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held, async)
		}
		w.scan(s.Cond, held, async)
		w.walkStmts(s.Body.List, held, async)
		if s.Else != nil {
			w.walkStmt(s.Else, held, async)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held, async)
		}
		w.scan(s.Cond, held, async)
		w.walkStmts(s.Body.List, held, async)
		return
	case *ast.RangeStmt:
		w.scan(s.X, held, async)
		w.walkStmts(s.Body.List, held, async)
		return
	}
	w.scan(stmt, held, async)
}

// handleOp processes a single expression statement that is a mutex
// lock/unlock, returning true if it was one.
func (w *lockOrderWalker) handleOp(e ast.Expr, held map[string]bool, async bool) bool {
	key, locks, ok := w.lockOp(e)
	if !ok {
		return false
	}
	if locks {
		w.acquire(key, ast.Unparen(e).Pos(), held, async)
	} else {
		delete(held, key)
	}
	return true
}

func (w *lockOrderWalker) acquire(key string, pos token.Pos, held map[string]bool, async bool) {
	for h := range held {
		// Every held lock orders before the new one — including a held
		// lock of the same key (two instances of one type, no ordering
		// rule: the classic transfer deadlock).
		w.graph.addEdge(h, key, pos)
	}
	held[key] = true
	if !async {
		w.graph.record(w.fnKey, key)
	}
}

// scan inspects a subtree for lock operations, calls made under locks,
// and function literals.
func (w *lockOrderWalker) scan(n ast.Node, held map[string]bool, async bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Not under go/defer here: a literal called inline (or stored
			// and invoked later on this goroutine) — analysed fresh, its
			// acquires attributed to the enclosing function.
			w.queue = append(w.queue, asyncBody{x.Body, async})
			return false
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				w.queue = append(w.queue, asyncBody{lit.Body, true})
			}
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if key, locks, ok := w.lockOp(x); ok {
				if locks {
					w.acquire(key, x.Pos(), held, async)
				} else {
					delete(held, key)
				}
				return false
			}
			callee := funcKey(calleeOf(w.pkg, x))
			if callee == "" {
				return true
			}
			if !async {
				w.graph.recordCall(w.fnKey, callee)
			}
			if len(held) > 0 {
				snap := make([]string, 0, len(held))
				for h := range held {
					snap = append(snap, h)
				}
				sort.Strings(snap)
				w.graph.pending = append(w.graph.pending, pendingCall{
					held:   snap,
					callee: callee,
					pos:    x.Pos(),
				})
			}
		}
		return true
	})
}

// lockOp recognises Lock/RLock/Unlock/RUnlock on a sync mutex and
// resolves the mutex's structural identity.
func (w *lockOrderWalker) lockOp(e ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	if !isSyncMutex(w.pkg, sel.X) {
		return "", false, false
	}
	key, ok = w.lockKey(sel.X)
	if !ok {
		return "", false, false
	}
	return key, locks, true
}

func isSyncMutex(pkg *Package, recv ast.Expr) bool {
	t := pkg.Info.Types[recv].Type
	if t == nil {
		return false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// lockKey maps the mutex receiver expression to its structural identity.
func (w *lockOrderWalker) lockKey(recv ast.Expr) (string, bool) {
	switch x := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if sel := w.pkg.Info.Selections[x]; sel != nil {
			v, ok := sel.Obj().(*types.Var)
			if !ok || !v.IsField() {
				return "", false
			}
			t := sel.Recv()
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name(), true
			}
			return "", false
		}
		// Package-qualified: otherpkg.Mu.
		if obj, ok := w.pkg.Info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
	case *ast.Ident:
		obj, ok := w.pkg.Info.Uses[x].(*types.Var)
		if !ok {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
		// Function-local mutex: identity scoped to the declaring function.
		return w.fnKey + "$" + x.Name, true
	}
	return "", false
}
