package analysis

import (
	"go/ast"
	"go/types"
)

// checkDiscardedErr flags discarded errors from the control-plane
// packages (proto, hpcm, events by default): assignments of a call's
// error result to _, and bare call statements that drop an error result
// on the floor. Those packages carry the migration protocol — a silently
// dropped Send error is exactly the failure mode the chaos suite exists
// to surface, so dropping one must be explicit (handled, or suppressed
// with a reason).
//
// `defer` and `go` statements are exempt: `defer c.Close()` at teardown
// is idiomatic and has no useful error path.
func checkDiscardedErr(cfg Config, pkg *Package) []Finding {
	var findings []Finding
	flag := func(call *ast.CallExpr, how string) {
		fn := calleeOf(pkg, call)
		if fn == nil || fn.Pkg() == nil || !matchAny(cfg.ErrorPackages, fn.Pkg().Path()) {
			return
		}
		findings = append(findings, Finding{
			Pos:   pkg.Fset.Position(call.Pos()),
			Check: "discardederr",
			Msg:   "error returned by " + qualifiedName(fn) + " is " + how,
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range stmt.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					if errorResultBlanked(pkg, stmt, i, call) {
						flag(call, "assigned to _")
					}
				}
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && hasErrorResult(pkg, call) {
					flag(call, "dropped by a bare call")
				}
			}
			return true
		})
	}
	return findings
}

// errorResultBlanked reports whether the call's error result lands in a
// blank identifier of the assignment. i is the call's index in stmt.Rhs:
// for the 1:1 form each RHS maps to one LHS; for the multi-value form
// (one call, many LHS) results map positionally.
func errorResultBlanked(pkg *Package, stmt *ast.AssignStmt, i int, call *ast.CallExpr) bool {
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		tuple, ok := pkg.Info.Types[call].Type.(*types.Tuple)
		if !ok {
			return false
		}
		for j := 0; j < tuple.Len() && j < len(stmt.Lhs); j++ {
			if isErrorType(tuple.At(j).Type()) && isIdent(stmt.Lhs[j], "_") {
				return true
			}
		}
		return false
	}
	return i < len(stmt.Lhs) && isIdent(stmt.Lhs[i], "_") &&
		isErrorType(pkg.Info.Types[call].Type)
}

// hasErrorResult reports whether any of the call's results is an error.
func hasErrorResult(pkg *Package, call *ast.CallExpr) bool {
	t := pkg.Info.Types[call].Type
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for j := 0; j < tuple.Len(); j++ {
			if isErrorType(tuple.At(j).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// calleeOf resolves the called function or method, if statically known.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// qualifiedName renders a function as pkg.Func or (pkg.Type).Method.
func qualifiedName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return "(" + named.Obj().Pkg().Name() + "." + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
