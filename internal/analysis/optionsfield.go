package analysis

import (
	"go/ast"
	"go/types"
)

// checkOptionsField flags dead configuration: an exported field on a
// struct type named Options or Config that the declaring package never
// reads. Configuration structs are write-only for callers — the declaring
// package is the one that must consume each knob — so a field with no read
// is a setting that silently does nothing, the config analogue of a
// dropped error. Covering both spellings keeps the packages that retain a
// Config struct (the constructor consolidation left the structs, only the
// duplicate constructors went) under the same hygiene rule as Options.
//
// Writes (assignments, composite literal keys) do not count as reads;
// taking a field's address does.
func checkOptionsField(cfg Config, pkg *Package) []Finding {
	// Exported fields of structs named Options or Config, keyed by object.
	type fieldInfo struct {
		structName string
		ident      *ast.Ident
	}
	fields := make(map[types.Object]fieldInfo)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || (ts.Name.Name != "Options" && ts.Name.Name != "Config") {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if name.IsExported() {
							fields[pkg.Info.Defs[name]] = fieldInfo{ts.Name.Name, name}
						}
					}
				}
			}
		}
	}
	if len(fields) == 0 {
		return nil
	}

	// Selector expressions that are pure write targets (the LHS of a
	// plain assignment). Compound assignments (+=) read too.
	writes := make(map[*ast.SelectorExpr]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || assign.Tok.String() != "=" {
				return true
			}
			for _, lhs := range assign.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
			return true
		})
	}

	read := make(map[types.Object]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || writes[sel] {
				return true
			}
			selection, ok := pkg.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if _, tracked := fields[selection.Obj()]; tracked {
				read[selection.Obj()] = true
			}
			return true
		})
	}

	var findings []Finding
	for obj, info := range fields {
		if read[obj] {
			continue
		}
		findings = append(findings, Finding{
			Pos:   pkg.Fset.Position(info.ident.Pos()),
			Check: "optionsfield",
			Msg: "exported field " + info.structName + "." + info.ident.Name +
				" is never read by " + pkg.Types.Name() + " (dead configuration)",
		})
	}
	return findings
}
