package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// checkHotAlloc enforces the //hot:path contract: an annotated function —
// and every module-internal function it can reach through static,
// same-goroutine calls — must not allocate. Allocation sites flagged:
//
//   - make, new, append (append can grow the backing array),
//   - &T{...} composite literals, and slice/map literals (plain struct
//     *value* literals stay on the stack and are exempt),
//   - non-constant string concatenation,
//   - calls into the fmt package,
//   - function literals (closure capture) and `go` statements,
//   - value-to-interface conversions at call arguments and returns
//     (boxing a non-pointer concrete value heap-allocates).
//
// Two escape hatches keep the check honest rather than noisy. First,
// error paths are cold by definition: an if-body (or any block) whose
// last statement returns a non-nil error, or panics, is skipped — a hot
// path that has already failed may allocate to say why. Second, a
// reasoned `//lint:allow hotalloc <reason>` on a *call site* cuts that
// call-graph edge, so an amortised boundary (a batch flush, a geometric
// buffer grow) can be declared once instead of suppressing every
// allocation behind it.
//
// The traversal leans on the call graph's under-approximation: calls
// through interfaces and into non-module packages (other than fmt) are
// not followed, so e.g. a Transport implementation is only checked if it
// is itself annotated.
func checkHotAlloc(cfg Config, mod *Module) []Finding {
	cuts := mod.suppressedLines("hotalloc")
	cut := func(pkg *Package, call *ast.CallExpr) bool {
		pos := pkg.Fset.Position(call.Pos())
		return cuts[pos.Filename][pos.Line]
	}

	// Breadth-first over sync, unsuppressed edges from each hot root, in
	// key order so the first root to reach a shared helper is stable.
	reachedVia := make(map[string]string) // func key -> hot root key
	var roots []string
	for _, fi := range mod.FuncsSorted() {
		if fi.Hot {
			roots = append(roots, fi.Key)
		}
	}
	for _, root := range roots {
		if _, seen := reachedVia[root]; seen {
			continue
		}
		queue := []string{root}
		reachedVia[root] = root
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			fi := mod.Funcs[key]
			if fi == nil {
				continue
			}
			for _, cs := range fi.Calls {
				if cs.Async || cs.Callee == "" {
					continue
				}
				callee := mod.Funcs[cs.Callee]
				if callee == nil || cut(fi.Pkg, cs.Call) {
					continue
				}
				if _, seen := reachedVia[cs.Callee]; seen {
					continue
				}
				reachedVia[cs.Callee] = root
				queue = append(queue, cs.Callee)
			}
		}
	}

	var keys []string
	for k := range reachedVia {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var findings []Finding
	for _, key := range keys {
		fi := mod.Funcs[key]
		if fi == nil {
			continue
		}
		suffix := " in //hot:path function " + displayKey(key)
		if root := reachedVia[key]; root != key {
			suffix = " on the hot path from " + displayKey(root) +
				" (via " + displayKey(key) + ")"
		}
		for _, site := range allocSites(fi.Pkg, fi.Decl) {
			findings = append(findings, Finding{
				Pos:   fi.Pkg.Fset.Position(site.pos),
				Check: "hotalloc",
				Msg:   site.what + suffix,
			})
		}
	}
	return findings
}

// allocSite is one allocation found in a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites scans one declaration body for allocation sites, skipping
// cold blocks and the interiors of function literals and go statements
// (the literal/statement itself is the reported allocation).
func allocSites(pkg *Package, fd *ast.FuncDecl) []allocSite {
	var sites []allocSite
	cold := coldBlocks(pkg, fd.Body)

	var resultIfaces []bool // per declared result: is it an interface?
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			t := pkg.Info.Types[field.Type].Type
			iface := t != nil && types.IsInterface(t) && !isErrorType(t)
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				resultIfaces = append(resultIfaces, iface)
			}
		}
	}

	handledLits := make(map[*ast.CompositeLit]bool)
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if cold[n] {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				sites = append(sites, allocSite{x.Pos(), "function literal allocates a closure"})
				return false
			case *ast.GoStmt:
				sites = append(sites, allocSite{x.Pos(), "go statement allocates a goroutine"})
				return false
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						handledLits[lit] = true
						sites = append(sites, allocSite{x.Pos(), "&-composite literal allocates"})
					}
				}
			case *ast.CompositeLit:
				if handledLits[x] {
					return true
				}
				switch t := pkg.Info.Types[x].Type; {
				case t == nil:
				case isSliceType(t):
					sites = append(sites, allocSite{x.Pos(), "slice literal allocates"})
				case isMapType(t):
					sites = append(sites, allocSite{x.Pos(), "map literal allocates"})
				}
			case *ast.BinaryExpr:
				if x.Op == token.ADD {
					tv := pkg.Info.Types[x]
					if tv.Value == nil && tv.Type != nil && isStringType(tv.Type) {
						sites = append(sites, allocSite{x.Pos(), "string concatenation allocates"})
					}
				}
			case *ast.ReturnStmt:
				for i, res := range x.Results {
					if i < len(resultIfaces) && resultIfaces[i] && len(x.Results) == len(resultIfaces) {
						if boxes(pkg, res) {
							sites = append(sites, allocSite{res.Pos(),
								"value-to-interface conversion allocates (returned as interface)"})
						}
					}
				}
			case *ast.CallExpr:
				sites = append(sites, callAllocs(pkg, x)...)
			}
			return true
		})
	}
	scan(fd.Body)

	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// callAllocs reports the allocations a single call expression implies:
// allocating builtins, fmt calls, and value-to-interface boxing of
// arguments passed to interface-typed parameters.
func callAllocs(pkg *Package, call *ast.CallExpr) []allocSite {
	var sites []allocSite
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				sites = append(sites, allocSite{call.Pos(), "make allocates"})
			case "new":
				sites = append(sites, allocSite{call.Pos(), "new allocates"})
			case "append":
				sites = append(sites, allocSite{call.Pos(), "append may grow the backing array"})
			}
			return sites
		}
	}
	if fn := calleeOf(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		sites = append(sites, allocSite{call.Pos(), "call to fmt." + fn.Name() + " allocates"})
		return sites // fmt boxes its own variadic args; one finding is enough
	}
	sig, _ := pkg.Info.Types[call.Fun].Type.(*types.Signature)
	if sig == nil {
		return sites
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a spread slice is passed as-is
			}
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		if boxes(pkg, arg) {
			sites = append(sites, allocSite{arg.Pos(), "value-to-interface conversion allocates (argument boxed)"})
		}
	}
	return sites
}

// boxes reports whether passing expr to an interface slot heap-allocates:
// a concrete non-pointer value does; pointers, interfaces, nils and
// constants that fit a pointer word do not need flagging here.
func boxes(pkg *Package, expr ast.Expr) bool {
	tv := pkg.Info.Types[expr]
	t := tv.Type
	if t == nil || tv.IsNil() {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		// One-word (or already-boxed) representations: no new allocation
		// for the data word. Func values and channels are pointers.
		return false
	}
	return true
}

// coldBlocks marks block statements and switch case clauses that end by
// returning a non-nil error or panicking: failure paths a hot function
// may allocate on.
func coldBlocks(pkg *Package, body *ast.BlockStmt) map[ast.Node]bool {
	cold := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			// The function's own body is never cold: ending in
			// `return f()` of error type is tail forwarding, not
			// failing. Only nested branches are bail-out paths.
			if b != body && isColdStmts(pkg, b.List) {
				cold[b] = true
			}
		case *ast.CaseClause:
			if isColdStmts(pkg, b.Body) {
				cold[b] = true
			}
		case *ast.CommClause:
			if isColdStmts(pkg, b.Body) {
				cold[b] = true
			}
		}
		return true
	})
	return cold
}

func isColdStmts(pkg *Package, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		res := last.Results[len(last.Results)-1]
		tv := pkg.Info.Types[res]
		return tv.Type != nil && isErrorType(tv.Type) && !tv.IsNil()
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pkg.Info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "panic"
	}
	return false
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
