// Package analysis is the project's self-checking layer: a small static-
// analysis framework (stdlib go/ast + go/types only, no x/tools) plus the
// project-specific checks that keep the repository's invariants machine-
// enforced. The paper's runtime classifies *hosts* with soft-state rules;
// this package applies the same spirit to the *codebase* — the properties
// the evaluation depends on (byte-determinism per seed, nil-safe metrics,
// no silently dropped control-plane errors) are encoded as rules and run
// on every `make lint` / `make ci` instead of being guarded only by
// after-the-fact regression tests.
//
// Checks operate on type-checked packages (see Loader) and report
// Findings. A finding can be suppressed at the site with a reasoned
// comment:
//
//	//lint:allow <check> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a suppression without one is itself reported. Package-
// level allowances (e.g. cmd/* may use the wall clock) live in Config.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String renders the finding in the canonical file:line: [check] message
// shape the CLI prints and the fixture tests match against.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Config is the per-project allowlist configuration. Patterns are package
// path patterns: "internal/vclock" matches the path segment-anchored at
// the end (so the module prefix is optional), and a trailing "/..."
// matches the package and everything below it.
type Config struct {
	// AllowClockPackages may use the time package and unseeded math/rand
	// directly: the clock abstraction itself, the real-host probes, and
	// the binaries/examples that run against wall clocks.
	AllowClockPackages []string `json:"allow_clock_packages"`
	// NilGuardPackages are packages whose exported pointer-receiver
	// methods must begin with a nil-receiver guard.
	NilGuardPackages []string `json:"nil_guard_packages"`
	// ErrorPackages are packages whose returned errors must not be
	// discarded with `_` or a bare call.
	ErrorPackages []string `json:"error_packages"`
	// MutexBlockingPackages are packages whose calls are considered
	// blocking for the mutex-held check (plus channel sends, which are
	// always considered).
	MutexBlockingPackages []string `json:"mutex_blocking_packages"`
	// EnumPackages declare the named constant types (faults.Kind, job
	// states, protocol message types) whose switches the eventcase check
	// holds to exhaustive-or-default. Packages under analysis are always
	// included.
	EnumPackages []string `json:"enum_packages"`
	// EventPayloadTypes are the concrete types carried in
	// events.Event.Payload; a type switch over an empty interface that
	// handles any of them must handle all of them or default.
	EventPayloadTypes []string `json:"event_payload_types"`
	// DisabledChecks turns checks off by name.
	DisabledChecks []string `json:"disabled_checks"`
}

// DefaultConfig is the repository's own policy.
func DefaultConfig() Config {
	return Config{
		AllowClockPackages: []string{
			"internal/vclock",   // the clock abstraction wraps the time package
			"internal/sysinfo",  // real-host probes read real clocks
			"internal/testutil", // test support paces grace windows on wall time
			"cmd/...",           // binaries run against real hosts
			"examples/...",      // examples demonstrate real-clock deployments
		},
		NilGuardPackages:      []string{"internal/metrics"},
		ErrorPackages:         []string{"internal/proto", "internal/hpcm", "internal/events"},
		MutexBlockingPackages: []string{"net", "internal/proto"},
		EnumPackages: []string{
			"internal/faults",
			"internal/events",
			"internal/jobs",
			"internal/proto",
			"internal/hpcm",
			"internal/malleable",
			"internal/scenario",
			"internal/metrics",
		},
		EventPayloadTypes: []string{
			"internal/hpcm.MigrationEvent",
			"internal/hpcm.CheckpointEvent",
			"internal/malleable.Event",
			"internal/jobs.Event",
			"internal/registry.RestartEvent",
		},
	}
}

// matchPackage reports whether the package path matches the pattern. The
// module prefix is optional in patterns, and a trailing "/..." matches
// the subtree rooted at the pattern.
func matchPackage(pattern, pkgPath string) bool {
	if base, ok := strings.CutSuffix(pattern, "/..."); ok {
		return segMatch(base, pkgPath) ||
			strings.HasPrefix(pkgPath, base+"/") ||
			strings.Contains(pkgPath, "/"+base+"/")
	}
	return segMatch(pattern, pkgPath)
}

// segMatch reports whether pkgPath equals pattern or ends in /pattern.
func segMatch(pattern, pkgPath string) bool {
	return pkgPath == pattern || strings.HasSuffix(pkgPath, "/"+pattern)
}

func matchAny(patterns []string, pkgPath string) bool {
	for _, p := range patterns {
		if matchPackage(p, pkgPath) {
			return true
		}
	}
	return false
}

// Check is one named rule.
type Check struct {
	Name string
	Doc  string
	Run  func(cfg Config, pkg *Package) []Finding
}

// Checks returns every check, in stable order.
func Checks() []Check {
	return []Check{
		{
			Name: "determinism",
			Doc:  "sim-path code must use vclock.Clock, not the time package or unseeded math/rand",
			Run:  checkDeterminism,
		},
		{
			Name: "nilreceiver",
			Doc:  "exported pointer-receiver methods in metrics packages must begin with a nil guard",
			Run:  checkNilReceiver,
		},
		{
			Name: "discardederr",
			Doc:  "errors returned by proto/hpcm/events calls must not be discarded",
			Run:  checkDiscardedErr,
		},
		{
			Name: "mutexheld",
			Doc:  "no channel sends or net/proto calls while a sync.Mutex is held",
			Run:  checkMutexHeld,
		},
		{
			Name: "optionsfield",
			Doc:  "exported Options fields must be read by the declaring package",
			Run:  checkOptionsField,
		},
	}
}

// ModuleCheck is one named rule that needs the interprocedural view: it
// runs once over the whole loaded module (call graph included) instead of
// once per package.
type ModuleCheck struct {
	Name string
	Doc  string
	Run  func(cfg Config, mod *Module) []Finding
}

// ModuleChecks returns every call-graph check, in stable order.
func ModuleChecks() []ModuleCheck {
	return []ModuleCheck{
		{
			Name: "hotalloc",
			Doc:  "//hot:path functions (and their module-internal callees) must not allocate",
			Run:  checkHotAlloc,
		},
		{
			Name: "lockorder",
			Doc:  "the global lock-acquisition graph must be cycle-free (no potential deadlocks)",
			Run:  checkLockOrder,
		},
		{
			Name: "eventcase",
			Doc:  "switches over event kinds, phases and payload types must be exhaustive or default",
			Run:  checkEventCase,
		},
	}
}

// CheckSuppression is the reserved check name findings about malformed
// //lint:allow comments are reported under. It cannot be suppressed.
const CheckSuppression = "suppression"

// suppression is one parsed //lint:allow comment.
type suppression struct {
	check  string
	reason string
	line   int // line the comment ends on
}

// suppressionsOf extracts the //lint:allow comments of a file. Malformed
// ones (no check, or no reason) are returned as findings.
func suppressionsOf(fset *token.FileSet, file *ast.File) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.End())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Pos:   fset.Position(c.Pos()),
					Check: CheckSuppression,
					Msg:   "malformed //lint:allow: want \"//lint:allow <check> <reason>\" (the reason is mandatory)",
				})
				continue
			}
			sups = append(sups, suppression{
				check:  fields[0],
				reason: strings.Join(fields[1:], " "),
				line:   pos.Line,
			})
		}
	}
	return sups, bad
}

// Filter applies //lint:allow suppressions to findings: a finding is
// suppressed when a matching comment sits on its line or the line above.
// It returns the surviving findings (plus findings for malformed
// suppression comments) and the number suppressed.
func Filter(findings []Finding, pkgs []*Package) (kept []Finding, suppressed int) {
	type key struct {
		file  string
		line  int
		check string
	}
	allowed := make(map[key]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			sups, bad := suppressionsOf(pkg.Fset, file)
			kept = append(kept, bad...)
			name := pkg.Fset.Position(file.Pos()).Filename
			for _, s := range sups {
				allowed[key{name, s.line, s.check}] = true
				allowed[key{name, s.line + 1, s.check}] = true
			}
		}
	}
	for _, f := range findings {
		if f.Check != CheckSuppression && allowed[key{f.Pos.Filename, f.Pos.Line, f.Check}] {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	sortFindings(kept)
	return kept, suppressed
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// RunChecks applies every enabled check to every package.
func RunChecks(cfg Config, pkgs []*Package) []Finding {
	disabled := make(map[string]bool, len(cfg.DisabledChecks))
	for _, name := range cfg.DisabledChecks {
		disabled[name] = true
	}
	var findings []Finding
	for _, c := range Checks() {
		if disabled[c.Name] {
			continue
		}
		for _, pkg := range pkgs {
			findings = append(findings, c.Run(cfg, pkg)...)
		}
	}
	mod := BuildModule(pkgs)
	for _, c := range ModuleChecks() {
		if disabled[c.Name] {
			continue
		}
		findings = append(findings, c.Run(cfg, mod)...)
	}
	return findings
}

// Run loads the packages matched by patterns (relative to dir) and applies
// every enabled check, returning the unsuppressed findings, sorted by
// position, and the count of suppressed ones.
func Run(dir string, patterns []string, cfg Config) ([]Finding, int, error) {
	_, pkgs, err := NewLoader(dir, patterns)
	if err != nil {
		return nil, 0, err
	}
	findings := RunChecks(cfg, pkgs)
	kept, suppressed := Filter(findings, pkgs)
	return kept, suppressed, nil
}
