package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// message is one delivered payload, matched by (communicator context,
// source rank, tag). raw marks a []byte payload moved without gob framing;
// parts (non-nil) marks a multi-part raw [][]byte payload — the page-batch
// fast path — received only into a *[][]byte.
type message struct {
	ctx   string
	src   int
	tag   int
	data  []byte
	parts [][]byte
	raw   bool
}

// msgPool recycles message envelopes between Send and Recv: on the paged
// migration path every page batch costs one envelope, and at 10k-host
// scale the envelopes dominated the send-side garbage. Payload slices are
// never pooled — they belong to the application under the zero-copy
// contract; only the struct is reused, with its fields zeroed on return.
var msgPool = sync.Pool{New: func() any { return new(message) }}

// getMessage returns a zeroed envelope from the pool.
func getMessage() *message {
	m, _ := msgPool.Get().(*message)
	return m
}

// putMessage zeroes and recycles an envelope. Callers must have handed
// the payload slices off first (decodeMessage aliases them to the
// receiver); dropping the struct's references here is what keeps pooled
// envelopes from pinning page batches.
func putMessage(m *message) {
	*m = message{}
	msgPool.Put(m)
}

// size is the payload size a Status reports: the summed fragments of a
// multi-part message, the data length otherwise.
func (m *message) size() int {
	if m.parts != nil {
		n := 0
		for _, p := range m.parts {
			n += len(p)
		}
		return n
	}
	return len(m.data)
}

// endpoint is a process's mailbox. Sends enqueue eagerly (buffered,
// non-blocking once transport time has been charged); receives match by
// context, source and tag, with wildcard support, in arrival order.
type endpoint struct {
	host string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*message
	closed bool
}

func newEndpoint(host string) *endpoint {
	ep := &endpoint{host: host}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

func (ep *endpoint) deliver(m *message) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return ErrProcExited
	}
	// In the send/recv steady state match removes in place, so the queue
	// retains its capacity and this append stops growing.
	ep.queue = append(ep.queue, m) //lint:allow hotalloc queue capacity is retained across the send/recv steady state
	ep.cond.Broadcast()
	return nil
}

// match removes and returns the first message matching (ctx, src, tag),
// blocking until one arrives. src/tag may be AnySource/AnyTag.
func (ep *endpoint) match(ctx string, src, tag int) (*message, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		for i, m := range ep.queue {
			if m.matches(ctx, src, tag) {
				ep.queue = append(ep.queue[:i], ep.queue[i+1:]...)
				return m, nil
			}
		}
		if ep.closed {
			return nil, ErrProcExited
		}
		ep.cond.Wait()
	}
}

// peekNow returns the first matching message without removing or blocking.
func (ep *endpoint) peekNow(ctx string, src, tag int) (*message, bool, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for _, m := range ep.queue {
		if m.matches(ctx, src, tag) {
			return m, true, nil
		}
	}
	if ep.closed {
		return nil, false, ErrProcExited
	}
	return nil, false, nil
}

// peek returns the first matching message without removing it, blocking
// until one arrives.
func (ep *endpoint) peek(ctx string, src, tag int) (*message, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		for _, m := range ep.queue {
			if m.matches(ctx, src, tag) {
				return m, nil
			}
		}
		if ep.closed {
			return nil, ErrProcExited
		}
		ep.cond.Wait()
	}
}

func (m *message) matches(ctx string, src, tag int) bool {
	if m.ctx != ctx {
		return false
	}
	if src != AnySource && m.src != src {
		return false
	}
	if tag != AnyTag && m.tag != tag {
		return false
	}
	return true
}

func (ep *endpoint) close() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.closed = true
	ep.cond.Broadcast()
}

// encode serialises one value with gob. Each message carries its own stream
// so arbitrary concrete types work without global registration.
func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("mpi: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// decode deserialises into ptr.
func decode(data []byte, ptr any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(ptr); err != nil {
		return fmt.Errorf("mpi: decode into %T: %w", ptr, err)
	}
	return nil
}
