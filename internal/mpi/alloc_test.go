package mpi

import "testing"

// TestZeroAllocHotPaths pins the //hot:path contract at runtime: a
// steady-state SendParts/Recv pair — the paged-migration inner loop —
// must not allocate. The message envelope comes from the pool, the
// endpoint queue retains its capacity, and the fragments move by
// reference end to end; the hotalloc check enforces the same property
// statically, this test catches what escape analysis decides at build
// time.
func TestZeroAllocHotPaths(t *testing.T) {
	u := NewUniverse(Options{})
	ready := make(chan *Comm, 1)
	u.Start(hosts(1), func(env *Env) error {
		ready <- env.World
		var blocked chan struct{}
		<-blocked // the send/recv pairs run on the test goroutine
		return nil
	})
	w := <-ready

	parts := [][]byte{{1, 2, 3, 4}, {5, 6}}
	var got [][]byte
	step := func() {
		if err := w.SendParts(parts, 0, 7); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Recv(&got, 0, 7); err != nil {
			t.Fatal(err)
		}
	}
	// One manual warm-up on top of AllocsPerRun's own: the first pair pays
	// for the pooled envelope and the queue's backing array.
	step()

	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("SendParts/Recv steady state allocates %.1f objects per op, want 0", avg)
	}
}
