package mpi

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements the MPI-2 dynamic process management the paper's
// migration protocol is built on: MPI_Comm_spawn, MPI_Open_port /
// MPI_Publish_name / MPI_Lookup_name, MPI_Comm_accept / MPI_Comm_connect,
// and MPI_Intercomm_merge. In 2004 only LAM/MPI implemented these; the
// paper notes MPICH-2 and Sun MPI could not be used for exactly this
// reason.

// Spawn launches len(hosts) new processes running main and returns the
// intercommunicator whose remote group is the children. The children see
// the parent through env.Parent (MPI_Comm_get_parent); their local world is
// a fresh communicator of the siblings.
//
// Spawn charges the universe's SpawnLatency, modelling LAM/MPI's slow
// dynamic process creation. It is called by a single process (the paper's
// migrating process is a singleton communicator); the returned handle
// belongs to the caller.
func (env *Env) Spawn(hosts []string, main Main) (*Comm, error) {
	return env.spawnFrom(env.World, hosts, main)
}

// HostFailedError reports dynamic process creation onto a dead or failing
// host. Control planes that spawn as part of a larger protocol (elastic
// resize, migration) match it with errors.As to tell "the target host died"
// — retry elsewhere, abort cleanly — from transport or port errors.
type HostFailedError struct {
	Host string
	Err  error
}

func (e *HostFailedError) Error() string {
	return fmt.Sprintf("mpi: spawn on failed host %q: %v", e.Host, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *HostFailedError) Unwrap() error { return e.Err }

// spawnFrom is Spawn with an explicit parent communicator: the children's
// Parent intercommunicator addresses comm's group rather than the original
// world, so a grown communicator can keep growing.
func (env *Env) spawnFrom(comm *Comm, hosts []string, main Main) (*Comm, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("mpi: Spawn with no hosts")
	}
	u := env.U
	if u.spawnLatency > 0 {
		u.clock.Sleep(u.spawnLatency)
	}
	// Vet the targets after the latency charge: a host that died while the
	// spawn was under way surfaces as a mid-spawn failure, not an early
	// argument error.
	for _, h := range hosts {
		if u.hostCheck != nil {
			if err := u.hostCheck(h); err != nil {
				return nil, &HostFailedError{Host: h, Err: err}
			}
		}
	}
	parentGroup := &group{
		ctx:   comm.group.ctx,
		hosts: comm.group.hosts,
		eps:   comm.group.eps,
	}
	envs, _ := u.launch(hosts, parentGroup, main)
	children := envs[0].World.group
	return &Comm{
		u:      u,
		group:  comm.group,
		remote: children,
		ctx:    children.parentInterCtx,
		rank:   comm.rank,
		self:   comm.self,
	}, nil
}

// spawnShare crosses the SpawnMerge broadcast from the spawning rank to the
// rest of the communicator: the parked children group plus the
// intercommunicator context, or the spawn error.
type spawnShare struct {
	GroupID    int64
	Ctx        string
	FailedHost string
	Err        string
}

// SpawnMerge grows an intracommunicator in place — the elastic-expand
// composite of MPI_Comm_spawn and MPI_Intercomm_merge. Collective over
// comm: rank 0 spawns len(hosts) processes running main, every rank joins
// the resulting intercommunicator, and all merge with the existing ranks
// ordered first (they keep their ranks; the children follow in host order).
// The children reach the merged communicator through env.Parent.Merge(true).
//
// A spawn failure is broadcast, so every rank returns the same error —
// *HostFailedError when a target host was down — and the communicator is
// left untouched for a uniform, clean abort of the expansion.
func (env *Env) SpawnMerge(comm *Comm, hosts []string, main Main) (*Comm, error) {
	if comm == nil || comm.remote != nil {
		return nil, fmt.Errorf("mpi: SpawnMerge needs an intracommunicator")
	}
	var share spawnShare
	var inter *Comm
	if comm.rank == 0 {
		var err error
		inter, err = env.spawnFrom(comm, hosts, main)
		if err != nil {
			share.Err = err.Error()
			var hf *HostFailedError
			if errors.As(err, &hf) {
				share.FailedHost = hf.Host
				share.Err = hf.Err.Error()
			}
		} else {
			share.Ctx = inter.ctx
			share.GroupID = env.U.shareGroup(inter.remote, comm.Size()-1)
		}
	}
	if err := comm.Bcast(&share, 0); err != nil {
		return nil, err
	}
	if share.Err != "" {
		if share.FailedHost != "" {
			return nil, &HostFailedError{Host: share.FailedHost, Err: errors.New(share.Err)}
		}
		return nil, fmt.Errorf("mpi: SpawnMerge: %s", share.Err)
	}
	if inter == nil {
		remote := env.U.claimGroup(share.GroupID)
		if remote == nil {
			return nil, fmt.Errorf("mpi: SpawnMerge: spawned group %d already claimed", share.GroupID)
		}
		inter = &Comm{
			u: comm.u, group: comm.group, remote: remote, ctx: share.Ctx,
			rank: comm.rank, self: comm.self,
		}
	}
	return inter.Merge(false)
}

// port is a rendezvous point for Connect/Accept.
type port struct {
	name    string
	accepts chan *connectReq
	done    chan struct{} // closed by ClosePort to release blocked callers
}

type connectReq struct {
	remote *group
	rank   int
	reply  chan *acceptReply
}

type acceptReply struct {
	local *group
	ctx   string
}

// OpenPort creates a named port another group can connect to
// (MPI_Open_port).
func (u *Universe) OpenPort() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.nextID++
	name := fmt.Sprintf("port-%d", u.nextID)
	u.ports[name] = &port{
		name:    name,
		accepts: make(chan *connectReq),
		done:    make(chan struct{}),
	}
	return name
}

// ClosePort removes a port, releasing any Accept or Connect blocked on it
// with an error.
func (u *Universe) ClosePort(name string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if p, ok := u.ports[name]; ok {
		close(p.done)
		delete(u.ports, name)
	}
}

// Publish binds a service name to a port name (MPI_Publish_name).
func (u *Universe) Publish(service, portName string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.ports[portName]; !ok {
		return fmt.Errorf("mpi: publish of unknown port %q", portName)
	}
	u.names[service] = portName
	return nil
}

// Unpublish removes a service binding (MPI_Unpublish_name).
func (u *Universe) Unpublish(service string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.names, service)
}

// Lookup resolves a service name to a port name (MPI_Lookup_name).
func (u *Universe) Lookup(service string) (string, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	name, ok := u.names[service]
	if !ok {
		return "", fmt.Errorf("mpi: no service %q", service)
	}
	return name, nil
}

func (u *Universe) port(name string) (*port, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	p, ok := u.ports[name]
	if !ok {
		return nil, fmt.Errorf("mpi: unknown port %q", name)
	}
	return p, nil
}

// Accept waits for a Connect on the port and returns the resulting
// intercommunicator (MPI_Comm_accept). Root-only: the caller represents its
// communicator.
func (env *Env) Accept(portName string, comm *Comm) (*Comm, error) {
	p, err := env.U.port(portName)
	if err != nil {
		return nil, err
	}
	var req *connectReq
	select {
	case req = <-p.accepts:
	case <-p.done:
		return nil, fmt.Errorf("mpi: port %q closed while accepting", portName)
	}
	ctx := env.U.nextCtx("intercomm")
	req.reply <- &acceptReply{local: comm.group, ctx: ctx}
	return &Comm{
		u: env.U, group: comm.group, remote: req.remote, ctx: ctx,
		rank: comm.rank, self: env.ep,
	}, nil
}

// Connect joins a port opened by another group and returns the resulting
// intercommunicator (MPI_Comm_connect). Root-only.
func (env *Env) Connect(portName string, comm *Comm) (*Comm, error) {
	p, err := env.U.port(portName)
	if err != nil {
		return nil, err
	}
	req := &connectReq{remote: comm.group, rank: comm.rank, reply: make(chan *acceptReply)}
	select {
	case p.accepts <- req:
	case <-p.done:
		return nil, fmt.Errorf("mpi: port %q closed while connecting", portName)
	}
	reply := <-req.reply
	return &Comm{
		u: env.U, group: comm.group, remote: reply.local, ctx: reply.ctx,
		rank: comm.rank, self: env.ep,
	}, nil
}

// mergeTag is the reserved internal tag of the Merge flag exchange.
const mergeTag = -1 << 20

// Merge turns an intercommunicator into an intracommunicator containing
// both groups (MPI_Intercomm_merge). Processes passing high=false are
// ordered before those passing high=true. Rank 0 of each side exchanges
// flags so the ordering is consistent even if both sides pass the same
// value (ties break on group context); non-zero ranks assume complementary
// flags, so multi-rank groups must pass complementary values.
func (c *Comm) Merge(high bool) (*Comm, error) {
	if c.remote == nil {
		return nil, fmt.Errorf("mpi: Merge of an intracommunicator")
	}
	local, remote := c.group, c.remote

	remoteHigh := !high
	if c.rank == 0 {
		if err := c.send(high, 0, mergeTag); err != nil {
			return nil, err
		}
		if _, err := c.recvInternal(&remoteHigh, 0, mergeTag); err != nil {
			return nil, err
		}
	}
	var first, second *group
	switch {
	case high != remoteHigh:
		if high {
			first, second = remote, local
		} else {
			first, second = local, remote
		}
	case local.ctx < remote.ctx:
		first, second = local, remote
	default:
		first, second = remote, local
	}
	// Both sides derive the identical context from shared knowledge: the
	// intercomm ctx plus the sorted pair of group ctxs.
	pair := []string{local.ctx, remote.ctx}
	sort.Strings(pair)
	ctx := fmt.Sprintf("%s/merged-%s-%s", c.ctx, pair[0], pair[1])

	ng := &group{ctx: ctx}
	ng.eps = append(append([]*endpoint(nil), first.eps...), second.eps...)
	ng.hosts = append(append([]string(nil), first.hosts...), second.hosts...)
	rank := -1
	for i, ep := range ng.eps {
		if ep == c.self {
			rank = i
			break
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("mpi: caller not in merged group")
	}
	return &Comm{u: c.u, group: ng, rank: rank, self: c.self}, nil
}
