package mpi

import (
	"fmt"
	"sort"
)

// This file implements the MPI-2 dynamic process management the paper's
// migration protocol is built on: MPI_Comm_spawn, MPI_Open_port /
// MPI_Publish_name / MPI_Lookup_name, MPI_Comm_accept / MPI_Comm_connect,
// and MPI_Intercomm_merge. In 2004 only LAM/MPI implemented these; the
// paper notes MPICH-2 and Sun MPI could not be used for exactly this
// reason.

// Spawn launches len(hosts) new processes running main and returns the
// intercommunicator whose remote group is the children. The children see
// the parent through env.Parent (MPI_Comm_get_parent); their local world is
// a fresh communicator of the siblings.
//
// Spawn charges the universe's SpawnLatency, modelling LAM/MPI's slow
// dynamic process creation. It is called by a single process (the paper's
// migrating process is a singleton communicator); the returned handle
// belongs to the caller.
func (env *Env) Spawn(hosts []string, main Main) (*Comm, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("mpi: Spawn with no hosts")
	}
	u := env.U
	if u.spawnLatency > 0 {
		u.clock.Sleep(u.spawnLatency)
	}
	parentGroup := &group{
		ctx:   env.World.group.ctx,
		hosts: env.World.group.hosts,
		eps:   env.World.group.eps,
	}
	envs, _ := u.launch(hosts, parentGroup, main)
	children := envs[0].World.group
	return &Comm{
		u:      u,
		group:  env.World.group,
		remote: children,
		ctx:    children.parentInterCtx,
		rank:   env.World.rank,
		self:   env.ep,
	}, nil
}

// port is a rendezvous point for Connect/Accept.
type port struct {
	name    string
	accepts chan *connectReq
	done    chan struct{} // closed by ClosePort to release blocked callers
}

type connectReq struct {
	remote *group
	rank   int
	reply  chan *acceptReply
}

type acceptReply struct {
	local *group
	ctx   string
}

// OpenPort creates a named port another group can connect to
// (MPI_Open_port).
func (u *Universe) OpenPort() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.nextID++
	name := fmt.Sprintf("port-%d", u.nextID)
	u.ports[name] = &port{
		name:    name,
		accepts: make(chan *connectReq),
		done:    make(chan struct{}),
	}
	return name
}

// ClosePort removes a port, releasing any Accept or Connect blocked on it
// with an error.
func (u *Universe) ClosePort(name string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if p, ok := u.ports[name]; ok {
		close(p.done)
		delete(u.ports, name)
	}
}

// Publish binds a service name to a port name (MPI_Publish_name).
func (u *Universe) Publish(service, portName string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.ports[portName]; !ok {
		return fmt.Errorf("mpi: publish of unknown port %q", portName)
	}
	u.names[service] = portName
	return nil
}

// Unpublish removes a service binding (MPI_Unpublish_name).
func (u *Universe) Unpublish(service string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.names, service)
}

// Lookup resolves a service name to a port name (MPI_Lookup_name).
func (u *Universe) Lookup(service string) (string, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	name, ok := u.names[service]
	if !ok {
		return "", fmt.Errorf("mpi: no service %q", service)
	}
	return name, nil
}

func (u *Universe) port(name string) (*port, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	p, ok := u.ports[name]
	if !ok {
		return nil, fmt.Errorf("mpi: unknown port %q", name)
	}
	return p, nil
}

// Accept waits for a Connect on the port and returns the resulting
// intercommunicator (MPI_Comm_accept). Root-only: the caller represents its
// communicator.
func (env *Env) Accept(portName string, comm *Comm) (*Comm, error) {
	p, err := env.U.port(portName)
	if err != nil {
		return nil, err
	}
	var req *connectReq
	select {
	case req = <-p.accepts:
	case <-p.done:
		return nil, fmt.Errorf("mpi: port %q closed while accepting", portName)
	}
	ctx := env.U.nextCtx("intercomm")
	req.reply <- &acceptReply{local: comm.group, ctx: ctx}
	return &Comm{
		u: env.U, group: comm.group, remote: req.remote, ctx: ctx,
		rank: comm.rank, self: env.ep,
	}, nil
}

// Connect joins a port opened by another group and returns the resulting
// intercommunicator (MPI_Comm_connect). Root-only.
func (env *Env) Connect(portName string, comm *Comm) (*Comm, error) {
	p, err := env.U.port(portName)
	if err != nil {
		return nil, err
	}
	req := &connectReq{remote: comm.group, rank: comm.rank, reply: make(chan *acceptReply)}
	select {
	case p.accepts <- req:
	case <-p.done:
		return nil, fmt.Errorf("mpi: port %q closed while connecting", portName)
	}
	reply := <-req.reply
	return &Comm{
		u: env.U, group: comm.group, remote: reply.local, ctx: reply.ctx,
		rank: comm.rank, self: env.ep,
	}, nil
}

// mergeTag is the reserved internal tag of the Merge flag exchange.
const mergeTag = -1 << 20

// Merge turns an intercommunicator into an intracommunicator containing
// both groups (MPI_Intercomm_merge). Processes passing high=false are
// ordered before those passing high=true. Rank 0 of each side exchanges
// flags so the ordering is consistent even if both sides pass the same
// value (ties break on group context); non-zero ranks assume complementary
// flags, so multi-rank groups must pass complementary values.
func (c *Comm) Merge(high bool) (*Comm, error) {
	if c.remote == nil {
		return nil, fmt.Errorf("mpi: Merge of an intracommunicator")
	}
	local, remote := c.group, c.remote

	remoteHigh := !high
	if c.rank == 0 {
		if err := c.send(high, 0, mergeTag); err != nil {
			return nil, err
		}
		if _, err := c.recvInternal(&remoteHigh, 0, mergeTag); err != nil {
			return nil, err
		}
	}
	var first, second *group
	switch {
	case high != remoteHigh:
		if high {
			first, second = remote, local
		} else {
			first, second = local, remote
		}
	case local.ctx < remote.ctx:
		first, second = local, remote
	default:
		first, second = remote, local
	}
	// Both sides derive the identical context from shared knowledge: the
	// intercomm ctx plus the sorted pair of group ctxs.
	pair := []string{local.ctx, remote.ctx}
	sort.Strings(pair)
	ctx := fmt.Sprintf("%s/merged-%s-%s", c.ctx, pair[0], pair[1])

	ng := &group{ctx: ctx}
	ng.eps = append(append([]*endpoint(nil), first.eps...), second.eps...)
	ng.hosts = append(append([]string(nil), first.hosts...), second.hosts...)
	rank := -1
	for i, ep := range ng.eps {
		if ep == c.self {
			rank = i
			break
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("mpi: caller not in merged group")
	}
	return &Comm{u: c.u, group: ng, rank: rank, self: c.self}, nil
}
