package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func hosts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("h%d", i)
	}
	return out
}

func runWorld(t *testing.T, n int, main Main) {
	t.Helper()
	u := NewUniverse(Options{})
	errs := u.Run(hosts(n), main)
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestRankAndSize(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	runWorld(t, 4, func(env *Env) error {
		if env.World.Size() != 4 {
			return fmt.Errorf("size = %d", env.World.Size())
		}
		if env.Parent != nil {
			return errors.New("unexpected parent")
		}
		if want := fmt.Sprintf("h%d", env.World.Rank()); env.Host != want {
			return fmt.Errorf("host = %s, want %s", env.Host, want)
		}
		mu.Lock()
		seen[env.World.Rank()] = true
		mu.Unlock()
		return nil
	})
	if len(seen) != 4 {
		t.Fatalf("ranks seen = %v", seen)
	}
}

func TestSendRecvBasic(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		switch w.Rank() {
		case 0:
			if err := w.Send("hello", 1, 7); err != nil {
				return err
			}
			var reply int
			st, err := w.Recv(&reply, 1, 8)
			if err != nil {
				return err
			}
			if reply != 42 || st.Source != 1 || st.Tag != 8 {
				return fmt.Errorf("reply=%d st=%+v", reply, st)
			}
		case 1:
			var msg string
			if _, err := w.Recv(&msg, 0, 7); err != nil {
				return err
			}
			if msg != "hello" {
				return fmt.Errorf("msg = %q", msg)
			}
			return w.Send(42, 0, 8)
		}
		return nil
	})
}

func TestRecvWildcards(t *testing.T) {
	runWorld(t, 3, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				var v int
				st, err := w.Recv(&v, AnySource, AnyTag)
				if err != nil {
					return err
				}
				if v != st.Source*100+st.Tag {
					return fmt.Errorf("v=%d from %d tag %d", v, st.Source, st.Tag)
				}
				got[st.Source] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("sources = %v", got)
			}
			return nil
		}
		return w.Send(w.Rank()*100+w.Rank(), 0, w.Rank())
	})
}

func TestTagMatching(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := w.Send("two", 1, 2); err != nil {
				return err
			}
			return w.Send("one", 1, 1)
		}
		var a, b string
		if _, err := w.Recv(&a, 0, 1); err != nil {
			return err
		}
		if _, err := w.Recv(&b, 0, 2); err != nil {
			return err
		}
		if a != "one" || b != "two" {
			return fmt.Errorf("a=%q b=%q", a, b)
		}
		return nil
	})
}

func TestFIFOPerSenderSameTag(t *testing.T) {
	const n = 50
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := w.Send(i, 1, 3); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			var v int
			if _, err := w.Recv(&v, 0, 3); err != nil {
				return err
			}
			if v != i {
				return fmt.Errorf("out of order: got %d want %d", v, i)
			}
		}
		return nil
	})
}

func TestNegativeUserTagRejected(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		if env.World.Rank() == 0 {
			if err := env.World.Send(1, 1, -3); !errors.Is(err, ErrBadTag) {
				return fmt.Errorf("err = %v, want ErrBadTag", err)
			}
			return env.World.Send(1, 1, 0) // unblock peer
		}
		var v int
		_, err := env.World.Recv(&v, 0, 0)
		return err
	})
}

func TestBadRank(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		if err := env.World.Send(1, 5, 0); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("send err = %v", err)
		}
		if _, err := env.World.Host(9); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("host err = %v", err)
		}
		return nil
	})
}

func TestProbe(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			return w.Send([]int{1, 2, 3}, 1, 9)
		}
		st, err := w.Probe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 9 || st.Bytes == 0 {
			return fmt.Errorf("probe = %+v", st)
		}
		var v []int
		if _, err := w.Recv(&v, st.Source, st.Tag); err != nil {
			return err
		}
		if len(v) != 3 {
			return fmt.Errorf("v = %v", v)
		}
		return nil
	})
}

func TestIprobe(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			// Nothing pending yet.
			if ok, _, err := w.Iprobe(AnySource, AnyTag); err != nil || ok {
				return fmt.Errorf("Iprobe on empty queue = %v, %v", ok, err)
			}
			// Tell the peer to send, then poll.
			if err := w.Send(true, 1, 0); err != nil {
				return err
			}
			for {
				ok, st, err := w.Iprobe(1, 3)
				if err != nil {
					return err
				}
				if ok {
					if st.Source != 1 || st.Tag != 3 {
						return fmt.Errorf("st = %+v", st)
					}
					break
				}
				time.Sleep(time.Millisecond)
			}
			var v int
			_, err := w.Recv(&v, 1, 3)
			return err
		}
		var go1 bool
		if _, err := w.Recv(&go1, 0, 0); err != nil {
			return err
		}
		return w.Send(7, 0, 3)
	})
}

func TestWaitAll(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			reqs := []*Request{
				w.Isend(1, 1, 0),
				w.Isend(2, 1, 1),
				w.Isend(3, 5, 0), // bad rank: contributes the error
			}
			if err := WaitAll(reqs...); err == nil {
				return errors.New("WaitAll swallowed the bad-rank error")
			}
			return nil
		}
		var a, b int
		r1 := w.Irecv(&a, 0, 0)
		r2 := w.Irecv(&b, 0, 1)
		if err := WaitAll(r1, r2); err != nil {
			return err
		}
		if a != 1 || b != 2 {
			return fmt.Errorf("a=%d b=%d", a, b)
		}
		return nil
	})
}

func TestIsendIrecvWaitTest(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			r := w.Isend(3.14, 1, 4)
			if _, err := r.Wait(); err != nil {
				return err
			}
			return nil
		}
		var v float64
		r := w.Irecv(&v, 0, 4)
		for {
			done, _, err := r.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if v != 3.14 {
			return fmt.Errorf("v = %v", v)
		}
		return nil
	})
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		peer := 1 - w.Rank()
		var got int
		if _, err := w.SendRecv(w.Rank(), peer, 5, &got, peer, 5); err != nil {
			return err
		}
		if got != peer {
			return fmt.Errorf("got %d want %d", got, peer)
		}
		return nil
	})
}

func TestStructPayload(t *testing.T) {
	type payload struct {
		Name string
		Vals []float64
		M    map[string]int
	}
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		if w.Rank() == 0 {
			return w.Send(payload{Name: "x", Vals: []float64{1, 2}, M: map[string]int{"a": 1}}, 1, 0)
		}
		var p payload
		if _, err := w.Recv(&p, 0, 0); err != nil {
			return err
		}
		if p.Name != "x" || len(p.Vals) != 2 || p.M["a"] != 1 {
			return fmt.Errorf("p = %+v", p)
		}
		return nil
	})
}

func TestSendToExitedRank(t *testing.T) {
	u := NewUniverse(Options{})
	ready := make(chan *Comm, 1)
	done := make(chan struct{})
	errs := u.Start(hosts(2), func(env *Env) error {
		if env.World.Rank() == 1 {
			return nil // exits immediately
		}
		ready <- env.World
		<-done
		return nil
	})
	w := <-ready
	// Wait until rank 1's endpoint is closed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := w.Send(1, 1, 0)
		if errors.Is(err, ErrProcExited) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send to exited rank never failed")
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	errs()
}

func TestRunReturnsPerRankErrors(t *testing.T) {
	u := NewUniverse(Options{})
	boom := errors.New("boom")
	errs := u.Run(hosts(3), func(env *Env) error {
		if env.World.Rank() == 1 {
			return boom
		}
		return nil
	})
	if errs[0] != nil || errs[2] != nil || !errors.Is(errs[1], boom) {
		t.Fatalf("errs = %v", errs)
	}
}

func TestSendPartsMultiPartRaw(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		switch w.Rank() {
		case 0:
			parts := [][]byte{{1, 2, 3}, {4}, {5, 6}}
			if err := w.SendParts(parts, 1, 9); err != nil {
				return err
			}
			// An empty batch still delivers (zero-byte multi-part message).
			if err := w.SendParts(nil, 1, 9); err != nil {
				return err
			}
			if err := w.SendParts([][]byte{{7}}, 1, -1); err == nil {
				return errors.New("negative tag accepted")
			}
			if err := w.SendParts([][]byte{{7}}, 5, 9); err == nil {
				return errors.New("bad rank accepted")
			}
		case 1:
			var parts [][]byte
			st, err := w.Recv(&parts, 0, 9)
			if err != nil {
				return err
			}
			if len(parts) != 3 || st.Bytes != 6 {
				return fmt.Errorf("parts=%v st=%+v", parts, st)
			}
			if parts[0][0] != 1 || parts[1][0] != 4 || parts[2][1] != 6 {
				return fmt.Errorf("parts content = %v", parts)
			}
			// Receiving a multi-part message into anything but *[][]byte fails.
			var wrong []byte
			if _, err := w.Recv(&wrong, 0, 9); err == nil {
				return errors.New("multi-part message landed in *[]byte")
			}
		}
		return nil
	})
}
