package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkPingPong measures point-to-point round-trip cost through the
// in-process message layer (Instant transport: pure library overhead).
func BenchmarkPingPong(b *testing.B) {
	for _, size := range []int{16, 1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			u := NewUniverse(Options{})
			payload := make([]byte, size)
			ready := make(chan *Comm, 1)
			wait := u.Start(hosts(2), func(env *Env) error {
				w := env.World
				if w.Rank() == 1 {
					for {
						var buf []byte
						if _, err := w.Recv(&buf, 0, 1); err != nil {
							return nil
						}
						if len(buf) == 0 {
							return nil // stop marker
						}
						if err := w.Send(buf, 0, 2); err != nil {
							return err
						}
					}
				}
				ready <- w
				var blocked chan struct{}
				<-blocked // rank 0's sends happen on the bench goroutine
				return nil
			})
			_ = wait
			w := <-ready
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Send(payload, 1, 1); err != nil {
					b.Fatal(err)
				}
				var buf []byte
				if _, err := w.Recv(&buf, 1, 2); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = w.Send([]byte{}, 1, 1)
		})
	}
}

// BenchmarkBcast measures the binomial broadcast across 8 ranks per
// iteration.
func BenchmarkBcast(b *testing.B) {
	u := NewUniverse(Options{})
	const n = 8
	iters := make(chan int)
	wait := u.Start(hosts(n), func(env *Env) error {
		w := env.World
		for count := range iters {
			for i := 0; i < count; i++ {
				v := w.Rank()
				if err := w.Bcast(&v, 0); err != nil {
					return err
				}
			}
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < n; i++ {
		iters <- b.N
	}
	close(iters)
	for _, err := range wait() {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllreduce measures a full allreduce across 8 ranks per
// iteration.
func BenchmarkAllreduce(b *testing.B) {
	u := NewUniverse(Options{})
	const n = 8
	iters := make(chan int)
	wait := u.Start(hosts(n), func(env *Env) error {
		w := env.World
		for count := range iters {
			for i := 0; i < count; i++ {
				var sum int
				if err := w.Allreduce(w.Rank(), &sum, Sum); err != nil {
					return err
				}
			}
		}
		return nil
	})
	b.ResetTimer()
	// Broadcast the iteration budget to all ranks, then let them run.
	for i := 0; i < n; i++ {
		iters <- b.N
	}
	close(iters)
	for _, err := range wait() {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnMerge measures the dynamic-process-management path the
// migration protocol exercises: spawn + intercomm merge + one exchange.
func BenchmarkSpawnMerge(b *testing.B) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"src"}, func(env *Env) error {
		for i := 0; i < b.N; i++ {
			inter, err := env.Spawn([]string{"dst"}, func(child *Env) error {
				merged, err := child.Parent.Merge(true)
				if err != nil {
					return err
				}
				var v int
				_, err = merged.Recv(&v, 0, 0)
				return err
			})
			if err != nil {
				return err
			}
			merged, err := inter.Merge(false)
			if err != nil {
				return err
			}
			if err := merged.Send(i, 1, 0); err != nil {
				return err
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	u.Wait()
}

// BenchmarkSendParts measures the multi-part raw path — the paged
// migration inner loop — per send/recv pair. Allocations matter as much
// as nanoseconds here: the steady state pools its envelope and moves the
// fragments by reference, so allocs/op must stay at zero (pinned by
// TestZeroAllocHotPaths, trended by the benchmark report).
func BenchmarkSendParts(b *testing.B) {
	u := NewUniverse(Options{})
	ready := make(chan *Comm, 1)
	u.Start(hosts(1), func(env *Env) error {
		ready <- env.World
		var blocked chan struct{}
		<-blocked // the send/recv pairs run on the bench goroutine
		return nil
	})
	w := <-ready
	parts := [][]byte{make([]byte, 2048), make([]byte, 2048)}
	var got [][]byte
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.SendParts(parts, 0, 3); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Recv(&got, 0, 3); err != nil {
			b.Fatal(err)
		}
	}
}
