// Package mpi is a message-passing library modelled on the MPI-2 subset the
// paper's runtime depends on (Section 3.3): communicators with ranks, tagged
// point-to-point communication with wildcards, non-blocking operations,
// collective operations, communicator management (Dup/Split), and — the part
// the paper singles out, available in 2004 only in LAM/MPI — dynamic process
// management: Spawn, named ports (Open/Publish/Lookup), Connect/Accept, and
// intercommunicator Merge. Those primitives are exactly what the migration
// protocol uses to create a process on the destination machine and join the
// communicators "so that the migrating process and initialized process can
// communicate in one communicator".
//
// Ranks are goroutines; each is bound to a named host, and every payload
// that crosses hosts is charged to the configured Transport (the simulated
// network in experiments, a latency/bandwidth model, or nothing). Spawn
// charges a configurable latency, modelling LAM/MPI's slow dynamic process
// creation (~0.3 s in the paper's Section 5.2).
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autoresched/internal/vclock"
)

// Errors returned by communication operations.
var (
	// ErrProcExited reports communication with a rank that has finished.
	ErrProcExited = errors.New("mpi: peer process has exited")
	// ErrBadRank reports a rank outside the communicator.
	ErrBadRank = errors.New("mpi: rank out of range")
	// ErrBadTag reports a negative user tag (negative tags are reserved for
	// collectives).
	ErrBadTag = errors.New("mpi: user tags must be non-negative")
)

// Wildcards for Recv and Probe.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// Options configures a Universe.
type Options struct {
	// Clock drives time charging; nil selects the real clock.
	Clock vclock.Clock
	// Transport charges cross-host payloads; nil selects Instant.
	Transport Transport
	// SpawnLatency is charged by every dynamic process creation.
	SpawnLatency time.Duration
	// HostCheck, when set, vets every host targeted by dynamic process
	// creation; a non-nil result makes Spawn fail with a *HostFailedError
	// naming the host. Nil trusts every host name.
	HostCheck func(host string) error
}

// Universe owns the processes, ports, and transport of one MPI world — the
// analogue of an mpirun invocation plus its runtime environment.
type Universe struct {
	clock        vclock.Clock
	transport    Transport
	spawnLatency time.Duration
	hostCheck    func(host string) error

	mu     sync.Mutex
	nextID int64
	ports  map[string]*port
	names  map[string]string // published service name -> port name
	groups map[int64]*sharedGroup
	wg     sync.WaitGroup
}

// sharedGroup parks a spawned group handle so the non-spawning ranks of a
// SpawnMerge can claim it; the entry is removed once every claim is taken.
type sharedGroup struct {
	g      *group
	claims int
}

// NewUniverse creates a Universe.
func NewUniverse(opts Options) *Universe {
	if opts.Clock == nil {
		opts.Clock = vclock.Real()
	}
	if opts.Transport == nil {
		opts.Transport = Instant{}
	}
	return &Universe{
		clock:        opts.Clock,
		transport:    opts.Transport,
		spawnLatency: opts.SpawnLatency,
		hostCheck:    opts.HostCheck,
		ports:        make(map[string]*port),
		names:        make(map[string]string),
		groups:       make(map[int64]*sharedGroup),
	}
}

// shareGroup parks a group handle under a fresh id for claims claimants.
// With no claimants the handle is not parked (the id is still unique).
func (u *Universe) shareGroup(g *group, claims int) int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.nextID++
	if claims > 0 {
		u.groups[u.nextID] = &sharedGroup{g: g, claims: claims}
	}
	return u.nextID
}

// claimGroup takes one claim on a parked group handle; nil if unknown.
func (u *Universe) claimGroup(id int64) *group {
	u.mu.Lock()
	defer u.mu.Unlock()
	sh, ok := u.groups[id]
	if !ok {
		return nil
	}
	sh.claims--
	if sh.claims <= 0 {
		delete(u.groups, id)
	}
	return sh.g
}

// Clock returns the universe clock.
func (u *Universe) Clock() vclock.Clock { return u.clock }

// Transport returns the universe's payload transport.
func (u *Universe) Transport() Transport { return u.transport }

func (u *Universe) nextCtx(prefix string) string {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.nextID++
	return fmt.Sprintf("%s-%d", prefix, u.nextID)
}

// Env is what a process main receives: its world communicator, the parent
// intercommunicator when it was spawned (MPI_Comm_get_parent), and the host
// it runs on.
type Env struct {
	U      *Universe
	Host   string
	World  *Comm
	Parent *Comm

	ep *endpoint
}

// Main is a process entry point.
type Main func(env *Env) error

// Kill closes the process's mailbox ahead of normal termination: blocked
// and future receives return ErrProcExited, and peers delivering to it fail
// the same way. Fault injection uses it to model a host crash taking a rank
// down mid-protocol; killing an already-finished process is a no-op.
func (env *Env) Kill() { env.ep.close() }

// Run launches one process per host name, forming a world communicator of
// size len(hosts), and waits for all of them. The returned slice holds each
// rank's error (nil for success), indexed by rank.
func (u *Universe) Run(hosts []string, main Main) []error {
	envs, errs := u.launch(hosts, nil, main)
	_ = envs
	return errs.wait()
}

// Start launches like Run but returns immediately; the returned Wait
// function blocks and yields per-rank errors.
func (u *Universe) Start(hosts []string, main Main) (wait func() []error) {
	_, errs := u.launch(hosts, nil, main)
	return errs.wait
}

// Wait blocks until every process ever launched in the universe has
// finished.
func (u *Universe) Wait() { u.wg.Wait() }

type errSet struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
}

func (e *errSet) wait() []error {
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.errs
}

// launch starts a group of processes sharing a fresh world; parent is the
// spawning group (nil for a root world).
func (u *Universe) launch(hosts []string, parent *group, main Main) ([]*Env, *errSet) {
	world := &group{ctx: u.nextCtx("world"), hosts: append([]string(nil), hosts...)}
	world.eps = make([]*endpoint, len(hosts))
	for i := range hosts {
		world.eps[i] = newEndpoint(hosts[i])
	}

	var interCtx string
	if parent != nil {
		interCtx = u.nextCtx("intercomm")
	}

	envs := make([]*Env, len(hosts))
	errs := &errSet{errs: make([]error, len(hosts))}
	for i := range hosts {
		env := &Env{
			U:     u,
			Host:  hosts[i],
			ep:    world.eps[i],
			World: &Comm{u: u, group: world, rank: i, self: world.eps[i]},
		}
		if parent != nil {
			env.Parent = &Comm{
				u: u, group: world, remote: parent, ctx: interCtx,
				rank: i, self: world.eps[i],
			}
		}
		envs[i] = env
		errs.wg.Add(1)
		u.wg.Add(1)
		go func(rank int, env *Env) {
			defer u.wg.Done()
			defer errs.wg.Done()
			defer env.ep.close()
			err := main(env)
			errs.mu.Lock()
			errs.errs[rank] = err
			errs.mu.Unlock()
		}(i, env)
	}

	if parent != nil {
		// Hand the parent its side of the intercommunicator through the
		// spawn result; see Env.Spawn.
		world.parentInterCtx = interCtx
	}
	return envs, errs
}
