package mpi

import (
	"time"

	"autoresched/internal/simnet"
	"autoresched/internal/vclock"
)

// Transport charges the time a payload takes to move between hosts. The
// message itself travels in process memory; the transport decides how long
// that is allowed to take (and whether it succeeds).
type Transport interface {
	Send(fromHost, toHost string, bytes int64) error
}

// Instant is a free transport: messages move in zero time. Useful for pure
// algorithm tests.
type Instant struct{}

// Send implements Transport.
func (Instant) Send(_, _ string, _ int64) error { return nil }

// SimTransport charges transfers to a simulated network, sharing bandwidth
// with whatever else the cluster is doing — this is what makes migration
// into a communication-busy host measurably slower (Table 2).
type SimTransport struct {
	Net *simnet.Network
}

// Send implements Transport by performing a blocking simulated transfer.
func (t SimTransport) Send(fromHost, toHost string, bytes int64) error {
	return t.Net.Transfer(fromHost, toHost, bytes)
}

// ModelTransport charges a fixed latency plus bytes/bandwidth to the clock,
// without contention. Bandwidth is in bytes per second.
type ModelTransport struct {
	Clock     vclock.Clock
	Latency   time.Duration
	Bandwidth float64
}

// Send implements Transport.
func (t ModelTransport) Send(fromHost, toHost string, bytes int64) error {
	if fromHost == toHost {
		return nil
	}
	d := t.Latency
	if t.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / t.Bandwidth * float64(time.Second))
	}
	if d > 0 && t.Clock != nil {
		t.Clock.Sleep(d)
	}
	return nil
}
