package mpi

import (
	"fmt"
	"sync"
	"testing"
)

func newTCPTransport(t *testing.T) *TCPTransport {
	t.Helper()
	tr, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestTCPTransportMovesBytes(t *testing.T) {
	tr := newTCPTransport(t)
	for _, size := range []int64{0, 1, 1000, 1 << 20} {
		if err := tr.Send("a", "b", size); err != nil {
			t.Fatalf("Send(%d): %v", size, err)
		}
	}
	// Loopback is free.
	if err := tr.Send("a", "a", 1<<30); err != nil {
		t.Fatal(err)
	}
}

func TestTCPTransportConcurrentPairs(t *testing.T) {
	tr := newTCPTransport(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				from := fmt.Sprintf("h%d", i)
				to := fmt.Sprintf("h%d", (i+j+1)%8)
				if err := tr.Send(from, to, 100<<10); err != nil {
					errs <- err
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPTransportConcurrentSamePair(t *testing.T) {
	tr := newTCPTransport(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tr.Send("x", "y", 64<<10); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPTransportClosed(t *testing.T) {
	tr := newTCPTransport(t)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := tr.Send("a", "b", 10); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}

// TestUniverseOverTCPTransport runs a whole MPI world whose cross-host
// messages traverse real loopback sockets.
func TestUniverseOverTCPTransport(t *testing.T) {
	tr := newTCPTransport(t)
	u := NewUniverse(Options{Transport: tr})
	errs := u.Run(hosts(4), func(env *Env) error {
		w := env.World
		var sum int
		if err := w.Allreduce(w.Rank()+1, &sum, Sum); err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("sum = %d", sum)
		}
		// A larger payload end to end.
		if w.Rank() == 0 {
			return w.Send(make([]byte, 2<<20), 1, 9)
		}
		if w.Rank() == 1 {
			var buf []byte
			if _, err := w.Recv(&buf, 0, 9); err != nil {
				return err
			}
			if len(buf) != 2<<20 {
				return fmt.Errorf("len = %d", len(buf))
			}
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
