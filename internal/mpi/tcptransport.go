package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPTransport moves every payload byte over a real TCP connection before
// the message is delivered, so cross-"host" traffic experiences genuine
// kernel socket behaviour (buffering, pacing, backpressure) instead of a
// model. It is the transport for running the library in real time on a
// machine or LAN; simulated experiments use SimTransport instead.
//
// One loopback (or LAN) echo server carries the bytes; Send streams the
// payload size over a cached per-host-pair connection and waits for the
// acknowledgement, charging real wall time proportional to real I/O.
type TCPTransport struct {
	addr string
	ln   net.Listener

	mu     sync.Mutex
	conns  map[string]*tcpConn // "from->to" -> connection
	closed bool
	wg     sync.WaitGroup
}

// tcpConn serialises concurrent payloads on one host-pair connection.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPTransport starts the byte-moving server on addr ("127.0.0.1:0"
// picks a free port).
func NewTCPTransport(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{addr: ln.Addr().String(), ln: ln, conns: make(map[string]*tcpConn)}
	t.wg.Add(1)
	go t.serve()
	return t, nil
}

// Addr returns the server address.
func (t *TCPTransport) Addr() string { return t.addr }

func (t *TCPTransport) serve() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			t.sink(conn)
		}()
	}
}

// sink consumes length-prefixed payloads and acknowledges each.
func (t *TCPTransport) sink(conn net.Conn) {
	var hdr [8]byte
	buf := make([]byte, 64<<10)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int64(binary.BigEndian.Uint64(hdr[:]))
		if _, err := io.CopyBuffer(io.Discard, io.LimitReader(conn, n), buf); err != nil {
			return
		}
		if _, err := conn.Write(hdr[:1]); err != nil { // ack
			return
		}
	}
}

// Send implements Transport: bytes of real data cross the socket, then the
// call returns.
func (t *TCPTransport) Send(fromHost, toHost string, bytes int64) error {
	if fromHost == toHost {
		return nil
	}
	key := fromHost + "->" + toHost
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("mpi: tcp transport closed")
	}
	tc, ok := t.conns[key]
	if !ok {
		raw, err := net.Dial("tcp", t.addr)
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("mpi: tcp transport dial: %w", err)
		}
		tc = &tcpConn{c: raw}
		t.conns[key] = tc
	}
	t.mu.Unlock()

	// Serialise per connection: one in-flight payload per host pair, which
	// is also what keeps the ack meaningful.
	tc.mu.Lock()
	err := t.transfer(tc.c, bytes)
	tc.mu.Unlock()
	if err != nil {
		t.mu.Lock()
		delete(t.conns, key)
		t.mu.Unlock()
		tc.c.Close()
	}
	return err
}

var zeroChunk = make([]byte, 64<<10)

func (t *TCPTransport) transfer(conn net.Conn, n int64) error {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(n))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	for n > 0 {
		chunk := int64(len(zeroChunk))
		if n < chunk {
			chunk = n
		}
		if _, err := conn.Write(zeroChunk[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	if _, err := io.ReadFull(conn, hdr[:1]); err != nil {
		return err
	}
	return nil
}

// Close stops the server and closes cached connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, tc := range t.conns {
		tc.c.Close()
	}
	t.conns = map[string]*tcpConn{}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

var _ Transport = (*TCPTransport)(nil)
