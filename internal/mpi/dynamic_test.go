package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"autoresched/internal/vclock"
)

func TestSpawnParentChildExchange(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"src"}, func(env *Env) error {
		inter, err := env.Spawn([]string{"dst"}, func(child *Env) error {
			if child.Parent == nil {
				return errors.New("child has no parent comm")
			}
			if child.Parent.RemoteSize() != 1 || !child.Parent.IsInter() {
				return fmt.Errorf("parent comm shape: remote=%d", child.Parent.RemoteSize())
			}
			var q string
			if _, err := child.Parent.Recv(&q, 0, 1); err != nil {
				return err
			}
			if q != "state?" {
				return fmt.Errorf("q = %q", q)
			}
			return child.Parent.Send("state!", 0, 2)
		})
		if err != nil {
			return err
		}
		if inter.RemoteSize() != 1 || !inter.IsInter() {
			return fmt.Errorf("intercomm shape: remote=%d", inter.RemoteSize())
		}
		if host, err := inter.Host(0); err != nil || host != "dst" {
			return fmt.Errorf("remote host = %q, %v", host, err)
		}
		if err := inter.Send("state?", 0, 1); err != nil {
			return err
		}
		var a string
		if _, err := inter.Recv(&a, 0, 2); err != nil {
			return err
		}
		if a != "state!" {
			return fmt.Errorf("a = %q", a)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestSpawnMultipleChildrenFormWorld(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"root"}, func(env *Env) error {
		inter, err := env.Spawn([]string{"c0", "c1", "c2"}, func(child *Env) error {
			// Children have their own world and can run collectives in it.
			var sum int
			if err := child.World.Allreduce(child.World.Rank(), &sum, Sum); err != nil {
				return err
			}
			if sum != 3 {
				return fmt.Errorf("children allreduce = %d", sum)
			}
			if child.World.Rank() == 0 {
				return child.Parent.Send(sum, 0, 0)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if inter.RemoteSize() != 3 {
			return fmt.Errorf("remote size = %d", inter.RemoteSize())
		}
		var sum int
		if _, err := inter.Recv(&sum, 0, 0); err != nil {
			return err
		}
		if sum != 3 {
			return fmt.Errorf("sum from children = %d", sum)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestSpawnChargesLatency(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	u := NewUniverse(Options{Clock: clock, SpawnLatency: 300 * time.Millisecond})
	done := make(chan time.Time, 1)
	wait := u.Start([]string{"a"}, func(env *Env) error {
		_, err := env.Spawn([]string{"b"}, func(*Env) error { return nil })
		done <- clock.Now()
		return err
	})
	clock.WaitUntilWaiters(1) // spawn sleeping on latency
	clock.Advance(300 * time.Millisecond)
	at := <-done
	if at.Before(vclock.Epoch.Add(300 * time.Millisecond)) {
		t.Fatalf("spawn returned at %v, before latency elapsed", at)
	}
	for _, err := range wait() {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestSpawnNoHosts(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"a"}, func(env *Env) error {
		_, err := env.Spawn(nil, func(*Env) error { return nil })
		if err == nil {
			return errors.New("Spawn(nil) succeeded")
		}
		return nil
	})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
}

func TestPortsPublishLookupConnectAccept(t *testing.T) {
	u := NewUniverse(Options{})
	portReady := make(chan struct{})
	wait := u.Start([]string{"server", "client"}, func(env *Env) error {
		w := env.World
		self, err := w.Split(w.Rank(), 0) // singleton comms
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			port := env.U.OpenPort()
			if err := env.U.Publish("migrate-svc", port); err != nil {
				return err
			}
			close(portReady)
			inter, err := env.Accept(port, self)
			if err != nil {
				return err
			}
			var v int
			if _, err := inter.Recv(&v, 0, 0); err != nil {
				return err
			}
			if v != 77 {
				return fmt.Errorf("v = %d", v)
			}
			return inter.Send(v+1, 0, 1)
		}
		<-portReady
		port, err := env.U.Lookup("migrate-svc")
		if err != nil {
			return err
		}
		inter, err := env.Connect(port, self)
		if err != nil {
			return err
		}
		if err := inter.Send(77, 0, 0); err != nil {
			return err
		}
		var v int
		if _, err := inter.Recv(&v, 0, 1); err != nil {
			return err
		}
		if v != 78 {
			return fmt.Errorf("reply = %d", v)
		}
		return nil
	})
	for _, err := range wait() {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestLookupUnknownServiceAndPort(t *testing.T) {
	u := NewUniverse(Options{})
	if _, err := u.Lookup("ghost"); err == nil {
		t.Fatal("Lookup of unknown service succeeded")
	}
	if err := u.Publish("svc", "no-such-port"); err == nil {
		t.Fatal("Publish of unknown port succeeded")
	}
	port := u.OpenPort()
	if err := u.Publish("svc", port); err != nil {
		t.Fatal(err)
	}
	u.Unpublish("svc")
	if _, err := u.Lookup("svc"); err == nil {
		t.Fatal("Lookup after Unpublish succeeded")
	}
	u.ClosePort(port)
	if _, err := u.port(port); err == nil {
		t.Fatal("port lookup after ClosePort succeeded")
	}
}

// TestMergeProducesWorkingIntracomm exercises the migration pattern end to
// end: spawn, merge, then communicate and run a collective in the merged
// communicator.
func TestMergeProducesWorkingIntracomm(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"src"}, func(env *Env) error {
		inter, err := env.Spawn([]string{"dst"}, func(child *Env) error {
			merged, err := child.Parent.Merge(true) // child orders high
			if err != nil {
				return err
			}
			if merged.Size() != 2 || merged.Rank() != 1 {
				return fmt.Errorf("child merged rank/size = %d/%d", merged.Rank(), merged.Size())
			}
			var v string
			if _, err := merged.Recv(&v, 0, 0); err != nil {
				return err
			}
			if v != "takeover" {
				return fmt.Errorf("v = %q", v)
			}
			var sum int
			return merged.Allreduce(1, &sum, Sum)
		})
		if err != nil {
			return err
		}
		merged, err := inter.Merge(false) // parent orders low
		if err != nil {
			return err
		}
		if merged.Size() != 2 || merged.Rank() != 0 {
			return fmt.Errorf("parent merged rank/size = %d/%d", merged.Rank(), merged.Size())
		}
		if err := merged.Send("takeover", 1, 0); err != nil {
			return err
		}
		var sum int
		if err := merged.Allreduce(1, &sum, Sum); err != nil {
			return err
		}
		if sum != 2 {
			return fmt.Errorf("merged allreduce = %d", sum)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

// TestMergeSameHighFlag: both sides passing the same flag still get a
// consistent ordering (ties break on group context).
func TestMergeSameHighFlag(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"src"}, func(env *Env) error {
		inter, err := env.Spawn([]string{"dst"}, func(child *Env) error {
			merged, err := child.Parent.Merge(false)
			if err != nil {
				return err
			}
			peer := 1 - merged.Rank()
			var v int
			_, err = merged.SendRecv(merged.Rank(), peer, 0, &v, peer, 0)
			if err != nil {
				return err
			}
			if v != peer {
				return fmt.Errorf("child exchanged %d, want %d", v, peer)
			}
			return nil
		})
		if err != nil {
			return err
		}
		merged, err := inter.Merge(false)
		if err != nil {
			return err
		}
		peer := 1 - merged.Rank()
		var v int
		if _, err := merged.SendRecv(merged.Rank(), peer, 0, &v, peer, 0); err != nil {
			return err
		}
		if v != peer {
			return fmt.Errorf("parent exchanged %d, want %d", v, peer)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestMergeOfIntracommFails(t *testing.T) {
	runWorld(t, 1, func(env *Env) error {
		if _, err := env.World.Merge(false); err == nil {
			return errors.New("Merge of intracomm succeeded")
		}
		return nil
	})
}

func TestCollectiveOnIntercommRejected(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"a"}, func(env *Env) error {
		inter, err := env.Spawn([]string{"b"}, func(child *Env) error {
			// Keep the child alive until the parent has tested.
			var v int
			_, err := child.Parent.Recv(&v, 0, 9)
			return err
		})
		if err != nil {
			return err
		}
		if err := inter.Barrier(); err == nil {
			return errors.New("Barrier on intercomm succeeded")
		}
		var x int
		if err := inter.Bcast(&x, 0); err == nil {
			return errors.New("Bcast on intercomm succeeded")
		}
		if _, err := inter.Dup(); err == nil {
			return errors.New("Dup on intercomm succeeded")
		}
		if _, err := inter.Split(0, 0); err == nil {
			return errors.New("Split on intercomm succeeded")
		}
		return inter.Send(0, 0, 9)
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestDupIsolatesTraffic(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		dup, err := w.Dup()
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			// Same tag on both communicators; contexts must keep them apart.
			if err := w.Send("world", 1, 5); err != nil {
				return err
			}
			return dup.Send("dup", 1, 5)
		}
		var fromDup, fromWorld string
		if _, err := dup.Recv(&fromDup, 0, 5); err != nil {
			return err
		}
		if _, err := w.Recv(&fromWorld, 0, 5); err != nil {
			return err
		}
		if fromDup != "dup" || fromWorld != "world" {
			return fmt.Errorf("dup=%q world=%q", fromDup, fromWorld)
		}
		return nil
	})
}

func TestSplitGroupsAndOrder(t *testing.T) {
	runWorld(t, 6, func(env *Env) error {
		w := env.World
		color := w.Rank() % 2
		key := -w.Rank() // reverse order inside each half
		sub, err := w.Split(color, key)
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		// Reverse key order: world rank 4 (color 0) should be rank 0 of its
		// sub-communicator.
		var leader int
		if sub.Rank() == 0 {
			leader = w.Rank()
		}
		if err := sub.Bcast(&leader, 0); err != nil {
			return err
		}
		wantLeader := 4 + color // 4 for evens, 5 for odds
		if leader != wantLeader {
			return fmt.Errorf("leader = %d, want %d", leader, wantLeader)
		}
		var sum int
		if err := sub.Allreduce(w.Rank(), &sum, Sum); err != nil {
			return err
		}
		want := 0 + 2 + 4
		if color == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			return fmt.Errorf("sub sum = %d, want %d", sum, want)
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	runWorld(t, 3, func(env *Env) error {
		w := env.World
		color := 0
		if w.Rank() == 2 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := w.Split(color, 0)
		if err != nil {
			return err
		}
		if w.Rank() == 2 {
			if sub != nil {
				return errors.New("undefined color got a communicator")
			}
			return nil
		}
		if sub.Size() != 2 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		return nil
	})
}

func TestSpawnHostFailedTyped(t *testing.T) {
	u := NewUniverse(Options{HostCheck: func(host string) error {
		if host == "dead" {
			return errors.New("host is down")
		}
		return nil
	}})
	errs := u.Run([]string{"src"}, func(env *Env) error {
		// A dead target surfaces as *HostFailedError naming the host...
		_, err := env.Spawn([]string{"ok", "dead"}, func(*Env) error { return nil })
		var hf *HostFailedError
		if !errors.As(err, &hf) {
			return fmt.Errorf("spawn error = %v, want *HostFailedError", err)
		}
		if hf.Host != "dead" {
			return fmt.Errorf("failed host = %q, want dead", hf.Host)
		}
		// ...while other dynamic-process errors stay untyped, so the resize
		// path can tell "host died" from protocol/transport failures.
		_, err = env.Connect("no-such-port", env.World)
		if err == nil || errors.As(err, &hf) {
			return fmt.Errorf("connect error = %v, want untyped", err)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestSpawnMergeGrowsWorld(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"a", "b", "c"}, func(env *Env) error {
		child := func(cenv *Env) error {
			big, err := cenv.Parent.Merge(true)
			if err != nil {
				return err
			}
			if big.Size() != 5 {
				return fmt.Errorf("child merged size = %d, want 5", big.Size())
			}
			// Children follow the parents, in host order.
			if host, err := big.Host(big.Rank()); err != nil || host != cenv.Host {
				return fmt.Errorf("child rank %d host = %q, %v", big.Rank(), host, err)
			}
			var sum int
			if err := big.Allreduce(big.Rank(), &sum, Sum); err != nil {
				return err
			}
			if sum != 10 {
				return fmt.Errorf("child allreduce = %d, want 10", sum)
			}
			return nil
		}
		big, err := env.SpawnMerge(env.World, []string{"d", "e"}, child)
		if err != nil {
			return err
		}
		if big.Size() != 5 || big.Rank() != env.World.Rank() {
			return fmt.Errorf("merged size=%d rank=%d (world rank %d)", big.Size(), big.Rank(), env.World.Rank())
		}
		var sum int
		if err := big.Allreduce(big.Rank(), &sum, Sum); err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("allreduce = %d, want 10", sum)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestSpawnMergeFailurePropagatesToAllRanks(t *testing.T) {
	u := NewUniverse(Options{HostCheck: func(host string) error {
		if host == "dead" {
			return errors.New("host is down")
		}
		return nil
	}})
	errs := u.Run([]string{"a", "b", "c"}, func(env *Env) error {
		_, err := env.SpawnMerge(env.World, []string{"dead"}, func(*Env) error { return nil })
		var hf *HostFailedError
		if !errors.As(err, &hf) || hf.Host != "dead" {
			return fmt.Errorf("rank %d: err = %v, want *HostFailedError{dead}", env.World.Rank(), err)
		}
		// The world is untouched: a post-abort collective still works.
		var sum int
		if err := env.World.Allreduce(1, &sum, Sum); err != nil {
			return err
		}
		if sum != 3 {
			return fmt.Errorf("post-abort allreduce = %d", sum)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestCreateGroupSubsetAndOrder(t *testing.T) {
	u := NewUniverse(Options{})
	errs := u.Run([]string{"a", "b", "c", "d"}, func(env *Env) error {
		w := env.World
		members := []int{3, 0, 1} // rank 2 does not participate at all
		if w.Rank() == 2 {
			if _, err := w.CreateGroup([]int{0, 1}, 7); err == nil {
				return errors.New("CreateGroup without the caller should fail")
			}
			if _, err := w.CreateGroup([]int{2, 2}, 7); err == nil {
				return errors.New("CreateGroup with duplicate ranks should fail")
			}
			return nil
		}
		sub, err := w.CreateGroup(members, 7)
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		wantRank := map[int]int{3: 0, 0: 1, 1: 2}[w.Rank()]
		if sub.Rank() != wantRank {
			return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), wantRank)
		}
		var sum int
		if err := sub.Allreduce(w.Rank(), &sum, Sum); err != nil {
			return err
		}
		if sum != 4 {
			return fmt.Errorf("sub allreduce = %d, want 4", sum)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}

func TestKillUnblocksReceiver(t *testing.T) {
	u := NewUniverse(Options{})
	ready := make(chan *Env, 1)
	wait := u.Start([]string{"a", "b"}, func(env *Env) error {
		if env.World.Rank() == 1 {
			ready <- env
			var v int
			_, err := env.World.Recv(&v, 0, 1)
			if !errors.Is(err, ErrProcExited) {
				return fmt.Errorf("recv after kill = %v, want ErrProcExited", err)
			}
			return nil
		}
		return nil
	})
	(<-ready).Kill()
	for _, err := range wait() {
		if err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()
}
