package mpi

import (
	"fmt"
	"reflect"
)

// ReduceOp combines two values of the same type.
type ReduceOp func(a, b any) (any, error)

// numericOp lifts int/int64/float64 binary functions into a ReduceOp.
func numericOp(name string, fi func(a, b int64) int64, ff func(a, b float64) float64) ReduceOp {
	return func(a, b any) (any, error) {
		switch x := a.(type) {
		case int:
			y, ok := b.(int)
			if !ok {
				return nil, fmt.Errorf("mpi: %s: mixed types %T and %T", name, a, b)
			}
			return int(fi(int64(x), int64(y))), nil
		case int64:
			y, ok := b.(int64)
			if !ok {
				return nil, fmt.Errorf("mpi: %s: mixed types %T and %T", name, a, b)
			}
			return fi(x, y), nil
		case float64:
			y, ok := b.(float64)
			if !ok {
				return nil, fmt.Errorf("mpi: %s: mixed types %T and %T", name, a, b)
			}
			return ff(x, y), nil
		default:
			return nil, fmt.Errorf("mpi: %s: unsupported type %T", name, a)
		}
	}
}

// Built-in reduction operations over int, int64 and float64.
var (
	Sum = numericOp("sum", func(a, b int64) int64 { return a + b },
		func(a, b float64) float64 { return a + b })
	Prod = numericOp("prod", func(a, b int64) int64 { return a * b },
		func(a, b float64) float64 { return a * b })
	Max = numericOp("max", func(a, b int64) int64 { return max(a, b) },
		func(a, b float64) float64 { return max(a, b) })
	Min = numericOp("min", func(a, b int64) int64 { return min(a, b) },
		func(a, b float64) float64 { return min(a, b) })
)

// requireIntra rejects collective calls on intercommunicators.
func (c *Comm) requireIntra(op string) error {
	if c.remote != nil {
		return fmt.Errorf("mpi: %s on an intercommunicator (Merge it first)", op)
	}
	return nil
}

// Barrier blocks until every rank in the communicator has entered it.
func (c *Comm) Barrier() error {
	if err := c.requireIntra("Barrier"); err != nil {
		return err
	}
	tag := c.nextCollTag()
	token := true
	if c.rank == 0 {
		for i := 1; i < c.Size(); i++ {
			var t bool
			if _, err := c.recvInternal(&t, AnySource, tag); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.send(token, i, tag); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(token, 0, tag); err != nil {
		return err
	}
	var t bool
	_, err := c.recvInternal(&t, 0, tag)
	return err
}

// Bcast broadcasts *ptr from root to every rank along a binomial tree.
func (c *Comm) Bcast(ptr any, root int) error {
	if err := c.requireIntra("Bcast"); err != nil {
		return err
	}
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("%w: root %d", ErrBadRank, root)
	}
	tag := c.nextCollTag()
	size := c.Size()
	// The MPICH binomial tree on root-relative ranks: receive from the
	// parent (relative rank with its lowest set bit cleared), then fan out
	// to children at decreasing strides.
	vrank := (c.rank - root + size) % size
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			src := (c.rank - mask + size) % size
			if _, err := c.recvInternal(ptr, src, tag); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	val := reflect.ValueOf(ptr).Elem().Interface()
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < size {
			dst := (c.rank + mask) % size
			if err := c.send(val, dst, tag); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce combines every rank's v with op; the result lands in *resultPtr on
// root (other ranks' resultPtr may be nil).
func (c *Comm) Reduce(v any, resultPtr any, op ReduceOp, root int) error {
	if err := c.requireIntra("Reduce"); err != nil {
		return err
	}
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("%w: root %d", ErrBadRank, root)
	}
	tag := c.nextCollTag()
	if c.rank == root {
		acc := v
		for i := 0; i < c.Size()-1; i++ {
			m, err := c.self.match(c.context(), AnySource, tag)
			if err != nil {
				return err
			}
			// Decode into a fresh value of the accumulator's type.
			ptr := reflect.New(reflect.TypeOf(acc))
			if err := decodeMessage(m, ptr.Interface()); err != nil {
				return err
			}
			if acc, err = op(acc, ptr.Elem().Interface()); err != nil {
				return err
			}
		}
		if resultPtr == nil {
			return fmt.Errorf("mpi: Reduce root needs a result pointer")
		}
		reflect.ValueOf(resultPtr).Elem().Set(reflect.ValueOf(acc))
		return nil
	}
	return c.send(v, root, tag)
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (c *Comm) Allreduce(v any, resultPtr any, op ReduceOp) error {
	if resultPtr == nil {
		return fmt.Errorf("mpi: Allreduce needs a result pointer")
	}
	if err := c.Reduce(v, resultPtr, op, 0); err != nil {
		return err
	}
	return c.Bcast(resultPtr, 0)
}

// Gather collects every rank's v at root, ordered by rank. Non-root ranks
// receive nil.
func (c *Comm) Gather(v any, root int) ([]any, error) {
	if err := c.requireIntra("Gather"); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: root %d", ErrBadRank, root)
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.send(v, root, tag)
	}
	out := make([]any, c.Size())
	out[root] = v
	template := reflect.TypeOf(v)
	for i := 0; i < c.Size()-1; i++ {
		m, err := c.self.match(c.context(), AnySource, tag)
		if err != nil {
			return nil, err
		}
		ptr := reflect.New(template)
		if err := decodeMessage(m, ptr.Interface()); err != nil {
			return nil, err
		}
		out[m.src] = ptr.Elem().Interface()
	}
	return out, nil
}

// Allgather collects every rank's v everywhere.
func (c *Comm) Allgather(v any) ([]any, error) {
	out, err := c.Gather(v, 0)
	if err != nil {
		return nil, err
	}
	if c.rank != 0 {
		out = make([]any, c.Size())
	}
	if err := c.Bcast(&out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Scatter distributes values[i] to rank i from root and returns the
// caller's element. On non-root ranks values is ignored.
func (c *Comm) Scatter(values []any, ptr any, root int) error {
	if err := c.requireIntra("Scatter"); err != nil {
		return err
	}
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("%w: root %d", ErrBadRank, root)
	}
	// Validate before reserving the collective tag: a rejected call must
	// not desynchronise the tag sequence against the other ranks.
	if c.rank == root && len(values) != c.Size() {
		return fmt.Errorf("mpi: Scatter needs %d values, got %d", c.Size(), len(values))
	}
	tag := c.nextCollTag()
	if c.rank == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.send(values[i], i, tag); err != nil {
				return err
			}
		}
		reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(values[root]))
		return nil
	}
	_, err := c.recvInternal(ptr, root, tag)
	return err
}

// Alltoall sends values[i] to rank i and returns what every rank sent to
// the caller, ordered by source rank.
func (c *Comm) Alltoall(values []any) ([]any, error) {
	if err := c.requireIntra("Alltoall"); err != nil {
		return nil, err
	}
	if len(values) != c.Size() {
		return nil, fmt.Errorf("mpi: Alltoall needs %d values, got %d", c.Size(), len(values))
	}
	tag := c.nextCollTag()
	out := make([]any, c.Size())
	out[c.rank] = values[c.rank]
	for i := 0; i < c.Size(); i++ {
		if i == c.rank {
			continue
		}
		if err := c.send(values[i], i, tag); err != nil {
			return nil, err
		}
	}
	template := reflect.TypeOf(values[c.rank])
	for i := 0; i < c.Size()-1; i++ {
		m, err := c.self.match(c.context(), AnySource, tag)
		if err != nil {
			return nil, err
		}
		ptr := reflect.New(template)
		if err := decodeMessage(m, ptr.Interface()); err != nil {
			return nil, err
		}
		out[m.src] = ptr.Elem().Interface()
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank i's *resultPtr holds
// op(v_0, ..., v_i) (MPI_Scan). Linear chain: each rank receives the prefix
// from rank-1, folds its value, and forwards.
func (c *Comm) Scan(v any, resultPtr any, op ReduceOp) error {
	if err := c.requireIntra("Scan"); err != nil {
		return err
	}
	if resultPtr == nil {
		return fmt.Errorf("mpi: Scan needs a result pointer")
	}
	tag := c.nextCollTag()
	acc := v
	if c.rank > 0 {
		m, err := c.self.match(c.context(), c.rank-1, tag)
		if err != nil {
			return err
		}
		ptr := reflect.New(reflect.TypeOf(v))
		if err := decodeMessage(m, ptr.Interface()); err != nil {
			return err
		}
		if acc, err = op(ptr.Elem().Interface(), v); err != nil {
			return err
		}
	}
	if c.rank+1 < c.Size() {
		if err := c.send(acc, c.rank+1, tag); err != nil {
			return err
		}
	}
	reflect.ValueOf(resultPtr).Elem().Set(reflect.ValueOf(acc))
	return nil
}

// recvInternal receives with an internal (possibly negative) tag.
func (c *Comm) recvInternal(ptr any, src, tag int) (Status, error) {
	m, err := c.self.match(c.context(), src, tag)
	if err != nil {
		return Status{}, err
	}
	if err := decodeMessage(m, ptr); err != nil {
		return Status{}, err
	}
	return Status{Source: m.src, Tag: m.tag, Bytes: m.size()}, nil
}
