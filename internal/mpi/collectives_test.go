package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBarrierSynchronises(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		var before, after atomic.Int32
		runWorld(t, n, func(env *Env) error {
			before.Add(1)
			if err := env.World.Barrier(); err != nil {
				return err
			}
			if got := before.Load(); got != int32(n) {
				return fmt.Errorf("crossed barrier with only %d/%d arrived", got, n)
			}
			after.Add(1)
			return nil
		})
		if after.Load() != int32(n) {
			t.Fatalf("n=%d: after = %d", n, after.Load())
		}
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for root := 0; root < n; root++ {
			var mu sync.Mutex
			got := map[int]string{}
			runWorld(t, n, func(env *Env) error {
				w := env.World
				msg := "default"
				if w.Rank() == root {
					msg = fmt.Sprintf("from-%d", root)
				}
				if err := w.Bcast(&msg, root); err != nil {
					return err
				}
				mu.Lock()
				got[w.Rank()] = msg
				mu.Unlock()
				return nil
			})
			want := fmt.Sprintf("from-%d", root)
			for rank, msg := range got {
				if msg != want {
					t.Fatalf("n=%d root=%d rank=%d got %q", n, root, rank, msg)
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		runWorld(t, n, func(env *Env) error {
			w := env.World
			var total int
			if err := w.Reduce(w.Rank()+1, &total, Sum, 0); err != nil {
				return err
			}
			if w.Rank() == 0 {
				want := n * (n + 1) / 2
				if total != want {
					return fmt.Errorf("sum = %d, want %d", total, want)
				}
			}
			return nil
		})
	}
}

func TestAllreduceMaxMinProd(t *testing.T) {
	runWorld(t, 4, func(env *Env) error {
		w := env.World
		var hi, lo float64
		if err := w.Allreduce(float64(w.Rank()), &hi, Max); err != nil {
			return err
		}
		if err := w.Allreduce(float64(w.Rank()), &lo, Min); err != nil {
			return err
		}
		if hi != 3 || lo != 0 {
			return fmt.Errorf("max=%v min=%v", hi, lo)
		}
		var prod int64
		if err := w.Allreduce(int64(w.Rank()+1), &prod, Prod); err != nil {
			return err
		}
		if prod != 24 {
			return fmt.Errorf("prod = %d", prod)
		}
		return nil
	})
}

func TestReduceMixedTypesError(t *testing.T) {
	if _, err := Sum(1, "x"); err == nil {
		t.Fatal("Sum(int, string) succeeded")
	}
	if _, err := Sum("a", "b"); err == nil {
		t.Fatal("Sum(string, string) succeeded")
	}
	if v, err := Max(int64(3), int64(9)); err != nil || v.(int64) != 9 {
		t.Fatalf("Max int64 = %v, %v", v, err)
	}
	if v, err := Min(2, 7); err != nil || v.(int) != 2 {
		t.Fatalf("Min int = %v, %v", v, err)
	}
}

func TestGatherScatter(t *testing.T) {
	runWorld(t, 4, func(env *Env) error {
		w := env.World
		vals, err := w.Gather(w.Rank()*10, 2)
		if err != nil {
			return err
		}
		if w.Rank() == 2 {
			for i, v := range vals {
				if v.(int) != i*10 {
					return fmt.Errorf("gather[%d] = %v", i, v)
				}
			}
		} else if vals != nil {
			return errors.New("non-root got gather data")
		}

		var mine string
		var toScatter []any
		if w.Rank() == 1 {
			for i := 0; i < 4; i++ {
				toScatter = append(toScatter, fmt.Sprintf("piece-%d", i))
			}
		}
		if err := w.Scatter(toScatter, &mine, 1); err != nil {
			return err
		}
		if want := fmt.Sprintf("piece-%d", w.Rank()); mine != want {
			return fmt.Errorf("scatter got %q want %q", mine, want)
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	runWorld(t, 3, func(env *Env) error {
		w := env.World
		vals, err := w.Allgather(w.Rank() + 100)
		if err != nil {
			return err
		}
		for i, v := range vals {
			if v.(int) != i+100 {
				return fmt.Errorf("rank %d: allgather[%d] = %v", w.Rank(), i, v)
			}
		}
		return nil
	})
}

func TestAlltoall(t *testing.T) {
	runWorld(t, 3, func(env *Env) error {
		w := env.World
		vals := make([]any, 3)
		for i := range vals {
			vals[i] = w.Rank()*10 + i
		}
		got, err := w.Alltoall(vals)
		if err != nil {
			return err
		}
		for src, v := range got {
			if want := src*10 + w.Rank(); v.(int) != want {
				return fmt.Errorf("alltoall[%d] = %v, want %d", src, v, want)
			}
		}
		return nil
	})
}

func TestScanPrefixSums(t *testing.T) {
	runWorld(t, 5, func(env *Env) error {
		w := env.World
		var prefix int
		if err := w.Scan(w.Rank()+1, &prefix, Sum); err != nil {
			return err
		}
		r := w.Rank() + 1
		want := r * (r + 1) / 2
		if prefix != want {
			return fmt.Errorf("rank %d prefix = %d, want %d", w.Rank(), prefix, want)
		}
		// A second collective on the same communicator stays in step.
		var mx float64
		if err := w.Scan(float64(w.Rank()), &mx, Max); err != nil {
			return err
		}
		if mx != float64(w.Rank()) {
			return fmt.Errorf("rank %d max prefix = %v", w.Rank(), mx)
		}
		return nil
	})
}

func TestScanSingleRankAndErrors(t *testing.T) {
	runWorld(t, 1, func(env *Env) error {
		var out int
		if err := env.World.Scan(42, &out, Sum); err != nil {
			return err
		}
		if out != 42 {
			return fmt.Errorf("out = %d", out)
		}
		if err := env.World.Scan(1, nil, Sum); err == nil {
			return errors.New("nil result pointer accepted")
		}
		return nil
	})
}

func TestScatterWrongCount(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		var v int
		if w.Rank() == 0 {
			if err := w.Scatter([]any{1}, &v, 0); err == nil {
				return errors.New("short scatter accepted")
			}
			// Unblock rank 1 with a real scatter.
			return w.Scatter([]any{10, 20}, &v, 0)
		}
		if err := w.Scatter(nil, &v, 0); err != nil {
			return err
		}
		if v != 20 {
			return fmt.Errorf("v = %d", v)
		}
		return nil
	})
}

func TestCollectiveBadRoot(t *testing.T) {
	runWorld(t, 2, func(env *Env) error {
		w := env.World
		var v int
		if err := w.Bcast(&v, 9); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("bcast err = %v", err)
		}
		if err := w.Reduce(1, &v, Sum, -1); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("reduce err = %v", err)
		}
		if _, err := w.Gather(1, 5); !errors.Is(err, ErrBadRank) {
			return fmt.Errorf("gather err = %v", err)
		}
		return nil
	})
}

// Property: Allreduce(Sum) over random integer vectors equals the local sum
// computed directly, for several world sizes.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(vals []int16, sizeSeed uint8) bool {
		n := int(sizeSeed%6) + 1
		if len(vals) < n {
			return true
		}
		want := 0
		for i := 0; i < n; i++ {
			want += int(vals[i])
		}
		ok := true
		var mu sync.Mutex
		u := NewUniverse(Options{})
		errs := u.Run(hosts(n), func(env *Env) error {
			var got int
			if err := env.World.Allreduce(int(vals[env.World.Rank()]), &got, Sum); err != nil {
				return err
			}
			if got != want {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
