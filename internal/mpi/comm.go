package mpi

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// group is a set of processes that can address one another by rank.
type group struct {
	ctx   string
	hosts []string
	eps   []*endpoint

	// parentInterCtx carries the spawn intercommunicator context from
	// launch back to the spawning process.
	parentInterCtx string
}

// Comm is a communicator handle. Each rank holds its own handle; handles
// share the underlying group. An intercommunicator additionally references
// a remote group (MPI-2 dynamic process management produces these).
type Comm struct {
	u      *Universe
	group  *group
	remote *group // nil for an intracommunicator
	ctx    string // message context; empty means group.ctx (intracomm)
	rank   int
	self   *endpoint

	collMu  sync.Mutex
	collSeq int
}

// Status describes a received or probed message.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// context returns the matching context for this communicator's messages.
func (c *Comm) context() string {
	if c.ctx != "" {
		return c.ctx
	}
	return c.group.ctx
}

// Rank returns the caller's rank in the local group.
func (c *Comm) Rank() int { return c.rank }

// Size returns the local group size.
func (c *Comm) Size() int { return len(c.group.eps) }

// RemoteSize returns the remote group size of an intercommunicator, or 0.
func (c *Comm) RemoteSize() int {
	if c.remote == nil {
		return 0
	}
	return len(c.remote.eps)
}

// IsInter reports whether this is an intercommunicator.
func (c *Comm) IsInter() bool { return c.remote != nil }

// Host returns the host name a rank runs on. For an intercommunicator the
// rank indexes the remote group, matching where sends go.
func (c *Comm) Host(rank int) (string, error) {
	g := c.destGroup()
	if rank < 0 || rank >= len(g.hosts) {
		return "", fmt.Errorf("%w: %d of %d", ErrBadRank, rank, len(g.hosts))
	}
	return g.hosts[rank], nil
}

// destGroup is where sends are addressed: the remote group for
// intercommunicators, the local group otherwise.
func (c *Comm) destGroup() *group {
	if c.remote != nil {
		return c.remote
	}
	return c.group
}

// Send sends v to dest with a non-negative tag, blocking until the payload
// has been accepted (eager buffering: transport time is charged, then the
// message is queued at the receiver).
func (c *Comm) Send(v any, dest, tag int) error {
	if tag < 0 {
		return fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	return c.send(v, dest, tag)
}

func (c *Comm) send(v any, dest, tag int) error {
	g := c.destGroup()
	if dest < 0 || dest >= len(g.eps) {
		return fmt.Errorf("%w: dest %d of %d", ErrBadRank, dest, len(g.eps))
	}
	// []byte payloads move without serialisation or copying (the zero-copy
	// contract: the sender must not mutate the slice after Send). Large
	// memory images — migration state — depend on this staying cheap.
	var data []byte
	raw := false
	if b, ok := v.([]byte); ok {
		data, raw = b, true
	} else {
		var err error
		if data, err = encode(v); err != nil {
			return err
		}
	}
	dst := g.eps[dest]
	if err := c.u.transport.Send(c.self.host, dst.host, int64(len(data))); err != nil {
		return fmt.Errorf("mpi: transport %s->%s: %w", c.self.host, dst.host, err)
	}
	m := getMessage()
	m.ctx, m.src, m.tag, m.data, m.raw = c.context(), c.rank, tag, data, raw
	return dst.deliver(m)
}

// emptyParts marks the multi-part path for a nil fragment slice without
// allocating per send. Receivers may only append to it through a fresh
// backing array (len == cap == 0), so sharing one instance is safe.
var emptyParts = [][]byte{}

// SendParts sends a multi-part raw payload — a slice of byte fragments
// that stay separate end to end, received only into a *[][]byte. Transport
// time is charged once for the summed size, and no fragment is copied or
// re-encoded (the zero-copy contract of Send's []byte fast path, extended
// to page batches: the sender must not mutate any fragment after SendParts).
//
//hot:path
func (c *Comm) SendParts(parts [][]byte, dest, tag int) error {
	if tag < 0 {
		return fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	g := c.destGroup()
	if dest < 0 || dest >= len(g.eps) {
		return fmt.Errorf("%w: dest %d of %d", ErrBadRank, dest, len(g.eps))
	}
	var total int64
	for _, p := range parts {
		total += int64(len(p))
	}
	dst := g.eps[dest]
	if err := c.u.transport.Send(c.self.host, dst.host, total); err != nil {
		return fmt.Errorf("mpi: transport %s->%s: %w", c.self.host, dst.host, err)
	}
	if parts == nil {
		parts = emptyParts // non-nil marks the multi-part path for decode
	}
	m := getMessage()
	m.ctx, m.src, m.tag, m.parts, m.raw = c.context(), c.rank, tag, parts, true
	return dst.deliver(m)
}

// Recv receives into ptr a message from src (or AnySource) with tag (or
// AnyTag), blocking until one arrives.
func (c *Comm) Recv(ptr any, src, tag int) (Status, error) {
	m, err := c.self.match(c.context(), src, tag)
	if err != nil {
		return Status{}, err
	}
	st := Status{Source: m.src, Tag: m.tag, Bytes: m.size()}
	if err := decodeMessage(m, ptr); err != nil {
		return Status{}, err
	}
	putMessage(m) // decodeMessage handed the payload off; recycle the envelope
	return st, nil
}

// decodeMessage lands a message in ptr, honouring the raw []byte and
// multi-part [][]byte fast paths.
func decodeMessage(m *message, ptr any) error {
	if m.parts != nil {
		pp, ok := ptr.(*[][]byte)
		if !ok {
			return fmt.Errorf("mpi: multi-part raw message received into %T", ptr)
		}
		*pp = m.parts
		return nil
	}
	if m.raw {
		bp, ok := ptr.(*[]byte)
		if !ok {
			return fmt.Errorf("mpi: raw []byte message received into %T", ptr)
		}
		*bp = m.data
		return nil
	}
	return decode(m.data, ptr)
}

// Probe blocks until a matching message is available and describes it
// without receiving it.
func (c *Comm) Probe(src, tag int) (Status, error) {
	m, err := c.self.peek(c.context(), src, tag)
	if err != nil {
		return Status{}, err
	}
	return Status{Source: m.src, Tag: m.tag, Bytes: m.size()}, nil
}

// Iprobe reports, without blocking, whether a matching message is
// available (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (bool, Status, error) {
	m, ok, err := c.self.peekNow(c.context(), src, tag)
	if err != nil || !ok {
		return false, Status{}, err
	}
	return true, Status{Source: m.src, Tag: m.tag, Bytes: m.size()}, nil
}

// WaitAll waits for every request and returns the first error encountered
// (MPI_Waitall).
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Request is a handle for a non-blocking operation.
type Request struct {
	done   chan struct{}
	status Status
	err    error
}

// Wait blocks until the operation completes and returns its status.
func (r *Request) Wait() (Status, error) {
	<-r.done
	return r.status, r.err
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() (bool, Status, error) {
	select {
	case <-r.done:
		return true, r.status, r.err
	default:
		return false, Status{}, nil
	}
}

// Isend starts a non-blocking send.
func (c *Comm) Isend(v any, dest, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = c.Send(v, dest, tag)
	}()
	return r
}

// Irecv starts a non-blocking receive into ptr. ptr must stay untouched
// until Wait/Test reports completion.
func (c *Comm) Irecv(ptr any, src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.status, r.err = c.Recv(ptr, src, tag)
	}()
	return r
}

// SendRecv performs a combined send and receive, safe against the
// head-to-head exchange deadlock.
func (c *Comm) SendRecv(sendV any, dest, sendTag int, recvPtr any, src, recvTag int) (Status, error) {
	sr := c.Isend(sendV, dest, sendTag)
	st, err := c.Recv(recvPtr, src, recvTag)
	if err != nil {
		return st, err
	}
	if _, serr := sr.Wait(); serr != nil {
		return st, serr
	}
	return st, nil
}

// collTagBase offsets internal tags so they can never collide with the
// AnyTag/AnySource wildcards (-1).
const collTagBase = 1000

// nextCollTag reserves a fresh internal (negative) tag for one collective
// operation. All ranks call collectives in the same order on a
// communicator (an MPI requirement), so per-rank counters agree.
func (c *Comm) nextCollTag() int {
	c.collMu.Lock()
	defer c.collMu.Unlock()
	c.collSeq++
	return -(c.collSeq + collTagBase)
}

// nextDerivedSeq reserves a sequence number for derived-communicator
// creation; again all ranks agree by calling order.
func (c *Comm) nextDerivedSeq() int {
	c.collMu.Lock()
	defer c.collMu.Unlock()
	c.collSeq++
	return c.collSeq
}

// Dup returns a duplicate communicator with a disjoint message context
// (collective).
func (c *Comm) Dup() (*Comm, error) {
	if c.remote != nil {
		return nil, fmt.Errorf("mpi: Dup of intercommunicator not supported")
	}
	seq := c.nextDerivedSeq()
	ctx := fmt.Sprintf("%s/dup-%d", c.group.ctx, seq)
	ng := &group{ctx: ctx, hosts: c.group.hosts, eps: c.group.eps}
	return &Comm{u: c.u, group: ng, rank: c.rank, self: c.self}, nil
}

// CreateGroup returns a sub-communicator containing exactly the given
// ranks of c, ordered as listed (position in ranks = new rank) — the MPI-3
// MPI_Comm_create_group: collective only over the listed ranks, so absent
// ranks (retired victims of a shrink, crashed hosts) need not participate.
// Every member must pass identical ranks and tag; the derived context is a
// pure function of both, so members agree without communication. The caller
// must be listed.
func (c *Comm) CreateGroup(ranks []int, tag int) (*Comm, error) {
	if c.remote != nil {
		return nil, fmt.Errorf("mpi: CreateGroup of an intercommunicator")
	}
	sig := make([]string, len(ranks))
	ng := &group{}
	newRank := -1
	seen := make(map[int]bool, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= len(c.group.eps) {
			return nil, fmt.Errorf("%w: %d of %d", ErrBadRank, r, len(c.group.eps))
		}
		if seen[r] {
			return nil, fmt.Errorf("mpi: CreateGroup duplicate rank %d", r)
		}
		seen[r] = true
		sig[i] = strconv.Itoa(r)
		ng.eps = append(ng.eps, c.group.eps[r])
		ng.hosts = append(ng.hosts, c.group.hosts[r])
		if r == c.rank {
			newRank = i
		}
	}
	if newRank < 0 {
		return nil, fmt.Errorf("mpi: caller rank %d not in CreateGroup ranks", c.rank)
	}
	ng.ctx = fmt.Sprintf("%s/group-%d-%s", c.group.ctx, tag, strings.Join(sig, "."))
	return &Comm{u: c.u, group: ng, rank: newRank, self: c.self}, nil
}

// Split partitions the communicator by color; ranks within each new
// communicator are ordered by (key, old rank). Collective: every rank must
// call it. A negative color yields a nil communicator for that rank
// (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) (*Comm, error) {
	if c.remote != nil {
		return nil, fmt.Errorf("mpi: Split of intercommunicator not supported")
	}
	seq := c.nextDerivedSeq()
	tag := -(seq + collTagBase)

	type entry struct {
		Rank  int
		Color int
		Key   int
	}
	mine := entry{Rank: c.rank, Color: color, Key: key}

	// Allgather the (color, key) table over point-to-point: everyone sends
	// to rank 0, rank 0 broadcasts the table.
	var table []entry
	if c.rank == 0 {
		table = make([]entry, c.Size())
		table[0] = mine
		for i := 1; i < c.Size(); i++ {
			var e entry
			m, err := c.self.match(c.context(), AnySource, tag)
			if err != nil {
				return nil, err
			}
			if err := decode(m.data, &e); err != nil {
				return nil, err
			}
			table[e.Rank] = e
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.send(table, i, tag); err != nil {
				return nil, err
			}
		}
	} else {
		if err := c.send(mine, 0, tag); err != nil {
			return nil, err
		}
		if _, err := c.Recv(&table, 0, tag); err != nil {
			return nil, err
		}
	}

	if color < 0 {
		return nil, nil
	}
	var members []entry
	for _, e := range table {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	ng := &group{ctx: fmt.Sprintf("%s/split-%d-c%d", c.group.ctx, seq, color)}
	newRank := -1
	for i, e := range members {
		ng.eps = append(ng.eps, c.group.eps[e.Rank])
		ng.hosts = append(ng.hosts, c.group.hosts[e.Rank])
		if e.Rank == c.rank {
			newRank = i
		}
	}
	return &Comm{u: c.u, group: ng, rank: newRank, self: c.self}, nil
}
