// Package simnode simulates a workstation of the paper's testbed.
//
// The evaluation (Section 5) observes hosts through exactly the quantities a
// Sun Blade 100 exposes to vmstat/prstat/ps: 1- and 5-minute load averages,
// CPU utilisation, the process table with start times, and memory use. The
// Host type reproduces those observables with an analytic model:
//
//   - One CPU delivering Speed work units per second, shared equally among
//     the runnable processes (proportional-share scheduling). A process is
//     runnable while it has an outstanding Compute request.
//   - UNIX load averages: exponentially damped averages of the run-queue
//     length with time constants of 1, 5 and 15 minutes, integrated exactly
//     over the piecewise-constant run-queue segments.
//   - Cumulative busy/idle CPU time, from which sensors derive windowed
//     utilisation exactly as vmstat derives idle percentages.
//
// Progress is integrated lazily between events (process arrivals, compute
// completions, queries), so results are deterministic given a clock and do
// not depend on goroutine scheduling.
package simnode

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"autoresched/internal/vclock"
)

// ErrProcessExited is returned by operations on a process that has exited.
var ErrProcessExited = errors.New("simnode: process has exited")

// Config describes the fixed characteristics of a simulated host.
type Config struct {
	// Speed is the capacity of one CPU in work units per second. The unit
	// is arbitrary; only ratios between hosts and workloads matter. Zero
	// selects 1e6 (one "megaflop-second" per second).
	Speed float64
	// CPUs is the processor count; zero selects 1 (the paper's Sun Blade
	// 100 is a uniprocessor). A single process never exceeds one CPU's
	// speed; n runnable processes share min(n, CPUs) CPUs.
	CPUs int
	// MemTotal is the physical memory in bytes. Zero selects 128 MB, the
	// paper's Sun Blade 100.
	MemTotal int64
	// MemBase is memory used by the operating system itself.
	MemBase int64
	// SwapTotal is the virtual memory in bytes. Zero selects 2x MemTotal.
	SwapTotal int64
}

// Host is a simulated workstation.
type Host struct {
	clock vclock.Clock
	name  string
	cfg   Config

	mu       sync.Mutex
	procs    map[int]*Proc
	nextPID  int
	lastAdv  time.Time
	loadAt   time.Time
	load     [3]float64 // 1, 5, 15 minute damped run-queue averages
	busyTime time.Duration
	idleTime time.Duration
	mounts   []Mount
	gen      int
	timer    *vclock.Timer
	cancel   chan struct{} // closed to release the stale wake-up goroutine
}

// Mount is a disk mount point with capacity accounting, the unit the paper's
// disk-usage monitoring rules inspect.
type Mount struct {
	Path  string
	Total int64
	Used  int64
}

var loadTau = [3]float64{60, 300, 900} // seconds

// NewHost creates a host named name driven by clock.
func NewHost(clock vclock.Clock, name string, cfg Config) *Host {
	if cfg.Speed <= 0 {
		cfg.Speed = 1e6
	}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.MemTotal <= 0 {
		cfg.MemTotal = 128 << 20
	}
	if cfg.SwapTotal <= 0 {
		cfg.SwapTotal = 2 * cfg.MemTotal
	}
	now := clock.Now()
	return &Host{
		clock:   clock,
		name:    name,
		cfg:     cfg,
		procs:   make(map[int]*Proc),
		nextPID: 100, // leave room for "system" pids
		lastAdv: now,
		loadAt:  now,
	}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Speed returns one CPU's capacity in work units per second.
func (h *Host) Speed() float64 { return h.cfg.Speed }

// CPUs returns the processor count.
func (h *Host) CPUs() int { return h.cfg.CPUs }

// shareFor returns the per-process execution rate with n runnable
// processes: each process runs on at most one CPU, and the host delivers
// at most CPUs processors' worth of work in total.
func (h *Host) shareFor(n int) float64 {
	if n <= h.cfg.CPUs {
		return h.cfg.Speed
	}
	return h.cfg.Speed * float64(h.cfg.CPUs) / float64(n)
}

// Clock returns the clock driving this host.
func (h *Host) Clock() vclock.Clock { return h.clock }

// Proc is a process on a simulated host.
type Proc struct {
	host    *Host
	pid     int
	name    string
	started time.Time

	// guarded by host.mu
	memory    int64
	cpuTime   time.Duration
	exited    bool
	computing *computeReq
}

type computeReq struct {
	remaining float64
	done      chan struct{}
}

// ProcInfo is a snapshot of one process-table entry, the unit ps/prstat
// style probes report.
type ProcInfo struct {
	PID      int
	Name     string
	Started  time.Time
	Memory   int64
	CPUTime  time.Duration
	Runnable bool
}

// Spawn adds a process with the given name and resident memory to the
// process table.
func (h *Host) Spawn(name string, memory int64) *Proc {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(h.clock.Now())
	h.nextPID++
	p := &Proc{
		host:    h,
		pid:     h.nextPID,
		name:    name,
		started: h.clock.Now(),
		memory:  memory,
	}
	h.procs[p.pid] = p
	return p
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Started returns the process start time (the paper reads it from the pid
// file timestamp).
func (p *Proc) Started() time.Time { return p.started }

// Host returns the host the process runs on.
func (p *Proc) Host() *Host { return p.host }

// SetMemory updates the resident memory of the process.
func (p *Proc) SetMemory(bytes int64) {
	h := p.host
	h.mu.Lock()
	defer h.mu.Unlock()
	p.memory = bytes
}

// Compute blocks in virtual time until the host has delivered work CPU
// work-units to this process. While blocked the process is runnable and
// contributes to the run queue. Only one Compute may be outstanding per
// process.
func (p *Proc) Compute(work float64) error {
	if work <= 0 {
		return nil
	}
	h := p.host
	h.mu.Lock()
	if p.exited {
		h.mu.Unlock()
		return ErrProcessExited
	}
	if p.computing != nil {
		h.mu.Unlock()
		return fmt.Errorf("simnode: process %d already computing", p.pid)
	}
	h.advanceLocked(h.clock.Now())
	req := &computeReq{remaining: work, done: make(chan struct{})}
	p.computing = req
	h.scheduleLocked()
	h.mu.Unlock()
	<-req.done
	return nil
}

// Exit removes the process from the process table, cancelling any
// outstanding Compute.
func (p *Proc) Exit() {
	h := p.host
	h.mu.Lock()
	defer h.mu.Unlock()
	if p.exited {
		return
	}
	h.advanceLocked(h.clock.Now())
	p.exited = true
	if p.computing != nil {
		close(p.computing.done)
		p.computing = nil
	}
	delete(h.procs, p.pid)
	h.scheduleLocked()
}

// Exited reports whether the process has exited.
func (p *Proc) Exited() bool {
	p.host.mu.Lock()
	defer p.host.mu.Unlock()
	return p.exited
}

// CPUTime returns the cumulative CPU time consumed by the process.
func (p *Proc) CPUTime() time.Duration {
	h := p.host
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(h.clock.Now())
	return p.cpuTime
}

// LoadAvg returns the 1-, 5- and 15-minute load averages.
func (h *Host) LoadAvg() (l1, l5, l15 float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(h.clock.Now())
	return h.load[0], h.load[1], h.load[2]
}

// RunQueue returns the current number of runnable processes.
func (h *Host) RunQueue() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(h.clock.Now())
	return h.runnableLocked()
}

// NumProcs returns the number of processes in the process table.
func (h *Host) NumProcs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.procs)
}

// CPUTimes returns cumulative busy and idle CPU time since host creation.
// Sensors derive windowed utilisation from deltas, exactly as vmstat does.
func (h *Host) CPUTimes() (busy, idle time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(h.clock.Now())
	return h.busyTime, h.idleTime
}

// Memory returns total and used physical memory in bytes.
func (h *Host) Memory() (total, used int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	used = h.cfg.MemBase
	for _, p := range h.procs {
		used += p.memory
	}
	if used > h.cfg.MemTotal {
		used = h.cfg.MemTotal
	}
	return h.cfg.MemTotal, used
}

// Swap returns total and used virtual memory in bytes. Memory demand beyond
// physical memory spills to swap.
func (h *Host) Swap() (total, used int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	demand := h.cfg.MemBase
	for _, p := range h.procs {
		demand += p.memory
	}
	if over := demand - h.cfg.MemTotal; over > 0 {
		used = over
		if used > h.cfg.SwapTotal {
			used = h.cfg.SwapTotal
		}
	}
	return h.cfg.SwapTotal, used
}

// SetMounts replaces the disk mount table.
func (h *Host) SetMounts(mounts []Mount) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mounts = append([]Mount(nil), mounts...)
}

// Mounts returns a copy of the disk mount table.
func (h *Host) Mounts() []Mount {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Mount(nil), h.mounts...)
}

// Procs returns a snapshot of the process table sorted by pid.
func (h *Host) Procs() []ProcInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(h.clock.Now())
	out := make([]ProcInfo, 0, len(h.procs))
	for _, p := range h.procs {
		out = append(out, ProcInfo{
			PID:      p.pid,
			Name:     p.name,
			Started:  p.started,
			Memory:   p.memory,
			CPUTime:  p.cpuTime,
			Runnable: p.computing != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

func (h *Host) runnableLocked() int {
	n := 0
	for _, p := range h.procs {
		if p.computing != nil {
			n++
		}
	}
	return n
}

// updateLoadLocked damps the load averages toward run-queue length q over
// dt seconds.
func (h *Host) updateLoadLocked(q float64, dt float64) {
	for i, tau := range loadTau {
		h.load[i] = q + (h.load[i]-q)*math.Exp(-dt/tau)
	}
}

// advanceLocked integrates CPU progress from lastAdv to now across segments
// with a constant runnable set, completing Compute requests at their exact
// finish instants.
func (h *Host) advanceLocked(now time.Time) {
	for {
		dt := now.Sub(h.lastAdv).Seconds()
		if dt <= 0 {
			return
		}
		var running []*Proc
		for _, p := range h.procs {
			if p.computing != nil {
				running = append(running, p)
			}
		}
		n := len(running)
		if n == 0 {
			h.updateLoadLocked(0, dt)
			h.idleTime += durationOf(dt)
			h.lastAdv = now
			return
		}
		share := h.shareFor(n) // work units/s per process
		step := dt
		for _, p := range running {
			if left := p.computing.remaining / share; left < step {
				step = left
			}
		}
		var finished []*Proc
		for _, p := range running {
			adv := share * step
			if p.computing.remaining-adv <= 1e-9 {
				adv = p.computing.remaining
				finished = append(finished, p)
			}
			p.computing.remaining -= adv
			p.cpuTime += durationOf(step * share / h.cfg.Speed)
		}
		util := float64(min(n, h.cfg.CPUs)) / float64(h.cfg.CPUs)
		h.busyTime += durationOf(step * util)
		h.idleTime += durationOf(step * (1 - util))
		h.updateLoadLocked(float64(n), step)
		h.lastAdv = h.lastAdv.Add(durationOf(step))
		if len(finished) == 0 {
			h.lastAdv = now
			return
		}
		for _, p := range finished {
			close(p.computing.done)
			p.computing = nil
		}
	}
}

// scheduleLocked arms a wake-up for the earliest Compute completion.
func (h *Host) scheduleLocked() {
	h.gen++
	if h.timer != nil {
		h.timer.Stop()
		close(h.cancel)
		h.timer = nil
		h.cancel = nil
	}
	n := h.runnableLocked()
	if n == 0 {
		return
	}
	share := h.shareFor(n)
	earliest := math.Inf(1)
	for _, p := range h.procs {
		if p.computing == nil {
			continue
		}
		if left := p.computing.remaining / share; left < earliest {
			earliest = left
		}
	}
	d := durationOf(earliest) + time.Nanosecond
	timer := h.clock.NewTimer(d)
	cancel := make(chan struct{})
	h.timer = timer
	h.cancel = cancel
	gen := h.gen
	go func() {
		var at time.Time
		select {
		case at = <-timer.C:
		case <-cancel:
			return
		}
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.gen != gen {
			return
		}
		h.timer = nil
		h.cancel = nil
		if now := h.clock.Now(); now.After(at) {
			at = now
		}
		h.advanceLocked(at)
		h.scheduleLocked()
	}()
}

func durationOf(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
