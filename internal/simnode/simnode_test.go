package simnode

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"autoresched/internal/vclock"
)

const speed = 1000.0 // work units per second in these tests

func newHost(cfg Config) (*Host, vclock.Clock) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	if cfg.Speed == 0 {
		cfg.Speed = speed
	}
	return NewHost(clock, "ws1", cfg), clock
}

func TestComputeTakesWorkOverSpeed(t *testing.T) {
	h, clock := newHost(Config{})
	p := h.Spawn("app", 1<<20)
	start := clock.Now()
	if err := p.Compute(10 * speed); err != nil { // 10 virtual seconds
		t.Fatal(err)
	}
	got := clock.Since(start)
	if got < 9*time.Second || got > 14*time.Second {
		t.Fatalf("Compute took %v, want ~10s", got)
	}
}

func TestTwoProcessesShareCPU(t *testing.T) {
	h, clock := newHost(Config{})
	a := h.Spawn("a", 0)
	b := h.Spawn("b", 0)
	start := clock.Now()
	var wg sync.WaitGroup
	for _, p := range []*Proc{a, b} {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if err := p.Compute(5 * speed); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	got := clock.Since(start)
	// Each needs 5s alone; sharing the CPU both finish at ~10s.
	if got < 9*time.Second || got > 14*time.Second {
		t.Fatalf("shared compute took %v, want ~10s", got)
	}
}

func TestShortJobDepartsAndLongJobSpeedsUp(t *testing.T) {
	h, clock := newHost(Config{})
	long := h.Spawn("long", 0)
	short := h.Spawn("short", 0)
	start := clock.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = long.Compute(9 * speed) }()
	go func() { defer wg.Done(); _ = short.Compute(1 * speed) }()
	wg.Wait()
	got := clock.Since(start)
	// Shared until short's 1s of work is done (at t=2s), then long runs
	// alone: 2 + 8 = 10s total.
	if got < 9*time.Second || got > 14*time.Second {
		t.Fatalf("took %v, want ~10s", got)
	}
}

func TestMultiCPUParallelism(t *testing.T) {
	// Two CPUs: two processes run at full speed simultaneously; a third
	// forces sharing.
	clock := vclock.Scaled(vclock.Epoch, 200)
	h := NewHost(clock, "smp", Config{Speed: speed, CPUs: 2})
	if h.CPUs() != 2 {
		t.Fatalf("CPUs = %d", h.CPUs())
	}
	start := clock.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := h.Spawn("w", 0)
			defer p.Exit()
			_ = p.Compute(5 * speed)
		}()
	}
	wg.Wait()
	// Both 5s jobs in ~5s: true parallelism.
	if got := clock.Since(start); got < 4*time.Second || got > 8*time.Second {
		t.Fatalf("2 jobs on 2 CPUs took %v, want ~5s", got)
	}

	start = clock.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := h.Spawn("w", 0)
			defer p.Exit()
			_ = p.Compute(5 * speed)
		}()
	}
	wg.Wait()
	// Four 5s jobs on 2 CPUs: ~10s.
	if got := clock.Since(start); got < 8*time.Second || got > 14*time.Second {
		t.Fatalf("4 jobs on 2 CPUs took %v, want ~10s", got)
	}
}

func TestMultiCPUSingleProcessCapped(t *testing.T) {
	// One process cannot use more than one CPU.
	clock := vclock.Scaled(vclock.Epoch, 200)
	h := NewHost(clock, "smp", Config{Speed: speed, CPUs: 4})
	p := h.Spawn("solo", 0)
	defer p.Exit()
	start := clock.Now()
	if err := p.Compute(5 * speed); err != nil {
		t.Fatal(err)
	}
	if got := clock.Since(start); got < 4*time.Second {
		t.Fatalf("solo job finished in %v: exceeded one CPU's speed", got)
	}
}

func TestMultiCPUUtilisationFractional(t *testing.T) {
	// One busy process on a 2-CPU host: utilisation is 50%.
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "smp", Config{Speed: speed, CPUs: 2})
	p := h.Spawn("w", 0)
	done := make(chan struct{})
	go func() { _ = p.Compute(100 * speed); close(done) }() // 100s on one CPU
	clock.WaitUntilWaiters(1)
	clock.Advance(100*time.Second + time.Millisecond)
	<-done
	busy, idle := h.CPUTimes()
	if d := busy - 50*time.Second; d < -time.Second || d > time.Second {
		t.Fatalf("busy = %v, want ~50s (one of two CPUs)", busy)
	}
	if d := idle - 50*time.Second; d < -time.Second || d > time.Second {
		t.Fatalf("idle = %v, want ~50s", idle)
	}
	p.Exit()
}

func TestLoadAverageRisesWithRunQueue(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "ws1", Config{Speed: speed})
	p := h.Spawn("app", 0)
	go func() { _ = p.Compute(1000 * speed) }() // effectively forever
	clock.WaitUntilWaiters(1)                   // compute completion timer armed

	clock.Advance(60 * time.Second)
	l1, l5, _ := h.LoadAvg()
	want1 := 1 - math.Exp(-1) // one runnable proc for one time constant
	if math.Abs(l1-want1) > 1e-6 {
		t.Fatalf("load1 after 60s = %v, want %v", l1, want1)
	}
	want5 := 1 - math.Exp(-60.0/300)
	if math.Abs(l5-want5) > 1e-6 {
		t.Fatalf("load5 after 60s = %v, want %v", l5, want5)
	}

	// After many time constants the 1-minute load converges to 1.
	clock.Advance(10 * time.Minute)
	l1, _, _ = h.LoadAvg()
	if math.Abs(l1-1) > 1e-3 {
		t.Fatalf("load1 after 11m = %v, want ~1", l1)
	}
	p.Exit()
	clock.Advance(60 * time.Second)
	l1, _, _ = h.LoadAvg()
	if want := math.Exp(-1); math.Abs(l1-want) > 1e-3 {
		t.Fatalf("load1 1m after exit = %v, want %v", l1, want)
	}
}

func TestCPUTimesAccountBusyAndIdle(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "ws1", Config{Speed: speed})
	p := h.Spawn("app", 0)
	done := make(chan struct{})
	go func() { _ = p.Compute(100 * speed); close(done) }() // 100s of work
	clock.WaitUntilWaiters(1)
	clock.Advance(100*time.Second + time.Millisecond)
	<-done
	clock.Advance(50 * time.Second)
	busy, idle := h.CPUTimes()
	if d := busy - 100*time.Second; d < -time.Second || d > time.Second {
		t.Fatalf("busy = %v, want ~100s", busy)
	}
	if d := idle - 50*time.Second; d < -time.Second || d > time.Second {
		t.Fatalf("idle = %v, want ~50s", idle)
	}
}

func TestPerProcessCPUTimeSplitsEvenly(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "ws1", Config{Speed: speed})
	a := h.Spawn("a", 0)
	b := h.Spawn("b", 0)
	go func() { _ = a.Compute(1000 * speed) }()
	go func() { _ = b.Compute(1000 * speed) }()
	clock.WaitUntilWaiters(1)
	// Both must be enqueued before advancing; poll the run queue.
	for i := 0; h.RunQueue() < 2 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if h.RunQueue() != 2 {
		t.Fatal("both processes never runnable")
	}
	clock.Advance(100 * time.Second)
	ta, tb := a.CPUTime(), b.CPUTime()
	if d := ta - 50*time.Second; d < -time.Second || d > time.Second {
		t.Fatalf("a CPU time = %v, want ~50s", ta)
	}
	if d := ta - tb; d < -time.Second || d > time.Second {
		t.Fatalf("CPU times diverge: a=%v b=%v", ta, tb)
	}
}

func TestExitCancelsOutstandingCompute(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "ws1", Config{Speed: speed})
	p := h.Spawn("app", 0)
	done := make(chan error, 1)
	go func() { done <- p.Compute(1e9) }()
	clock.WaitUntilWaiters(1)
	p.Exit()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Compute did not return after Exit")
	}
	if !p.Exited() {
		t.Fatal("Exited() = false")
	}
	if err := p.Compute(1); err != ErrProcessExited {
		t.Fatalf("Compute after exit: err = %v, want ErrProcessExited", err)
	}
	if h.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d, want 0", h.NumProcs())
	}
}

func TestDoubleComputeRejected(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "ws1", Config{Speed: speed})
	p := h.Spawn("app", 0)
	go func() { _ = p.Compute(1e9) }()
	clock.WaitUntilWaiters(1)
	if err := p.Compute(1); err == nil {
		t.Fatal("second concurrent Compute accepted")
	}
	p.Exit()
}

func TestComputeZeroReturnsImmediately(t *testing.T) {
	h, _ := newHost(Config{})
	p := h.Spawn("app", 0)
	if err := p.Compute(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Compute(-5); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	h, _ := newHost(Config{MemTotal: 128 << 20, MemBase: 16 << 20})
	total, used := h.Memory()
	if total != 128<<20 || used != 16<<20 {
		t.Fatalf("base memory = %d/%d", used, total)
	}
	p := h.Spawn("app", 32<<20)
	_, used = h.Memory()
	if used != 48<<20 {
		t.Fatalf("used = %d, want 48MB", used)
	}
	p.SetMemory(64 << 20)
	_, used = h.Memory()
	if used != 80<<20 {
		t.Fatalf("used after SetMemory = %d, want 80MB", used)
	}
	p.Exit()
	_, used = h.Memory()
	if used != 16<<20 {
		t.Fatalf("used after exit = %d, want 16MB", used)
	}
}

func TestSwapSpillover(t *testing.T) {
	h, _ := newHost(Config{MemTotal: 100, SwapTotal: 200})
	h.Spawn("big", 150)
	_, memUsed := h.Memory()
	if memUsed != 100 {
		t.Fatalf("mem used = %d, want clamped 100", memUsed)
	}
	swapTotal, swapUsed := h.Swap()
	if swapTotal != 200 || swapUsed != 50 {
		t.Fatalf("swap = %d/%d, want 50/200", swapUsed, swapTotal)
	}
}

func TestProcsSnapshot(t *testing.T) {
	h, _ := newHost(Config{})
	a := h.Spawn("alpha", 10)
	b := h.Spawn("beta", 20)
	infos := h.Procs()
	if len(infos) != 2 {
		t.Fatalf("len(Procs) = %d, want 2", len(infos))
	}
	if infos[0].PID != a.PID() || infos[1].PID != b.PID() {
		t.Fatalf("procs not sorted by pid: %+v", infos)
	}
	if infos[0].Name != "alpha" || infos[1].Memory != 20 {
		t.Fatalf("snapshot fields wrong: %+v", infos)
	}
	if infos[0].Started.Before(vclock.Epoch) {
		t.Fatalf("start time %v before epoch", infos[0].Started)
	}
}

func TestMounts(t *testing.T) {
	h, _ := newHost(Config{})
	h.SetMounts([]Mount{{Path: "/", Total: 100, Used: 61}})
	m := h.Mounts()
	if len(m) != 1 || m[0].Path != "/" || m[0].Used != 61 {
		t.Fatalf("mounts = %+v", m)
	}
	m[0].Used = 99 // mutating the copy must not affect the host
	if h.Mounts()[0].Used != 61 {
		t.Fatal("Mounts returned aliased slice")
	}
}

func TestDefaultsApplied(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "x", Config{})
	if h.Speed() != 1e6 {
		t.Fatalf("default speed = %v", h.Speed())
	}
	total, _ := h.Memory()
	if total != 128<<20 {
		t.Fatalf("default mem = %d", total)
	}
	st, _ := h.Swap()
	if st != 256<<20 {
		t.Fatalf("default swap = %d", st)
	}
	if h.Name() != "x" || h.Clock() != vclock.Clock(clock) {
		t.Fatal("accessors wrong")
	}
}

// Property: CPU time is conserved — the total CPU time delivered to
// processes equals CPUs x busy time, for arbitrary workloads on 1- and
// 2-CPU hosts.
func TestCPUTimeConservationProperty(t *testing.T) {
	f := func(works []uint16, cpuSeed bool) bool {
		if len(works) == 0 {
			return true
		}
		if len(works) > 6 {
			works = works[:6]
		}
		cpus := 1
		if cpuSeed {
			cpus = 2
		}
		clock := vclock.NewManual(vclock.Epoch)
		h := NewHost(clock, "ws", Config{Speed: 1000, CPUs: cpus})
		var procs []*Proc
		var wg sync.WaitGroup
		for _, w := range works {
			p := h.Spawn("w", 0)
			procs = append(procs, p)
			wg.Add(1)
			go func(p *Proc, work float64) {
				defer wg.Done()
				_ = p.Compute(work + 1)
			}(p, float64(w))
		}
		for h.RunQueue() < len(works) {
			time.Sleep(50 * time.Microsecond)
		}
		for h.RunQueue() > 0 {
			clock.Advance(time.Second)
		}
		wg.Wait()
		var total time.Duration
		for _, p := range procs {
			total += p.CPUTime()
		}
		busy, _ := h.CPUTimes()
		want := time.Duration(cpus) * busy
		diff := total - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 10*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: load averages always lie within [0, max run-queue length seen].
func TestLoadAverageBoundedProperty(t *testing.T) {
	f := func(burst []uint8) bool {
		if len(burst) > 6 {
			burst = burst[:6]
		}
		clock := vclock.NewManual(vclock.Epoch)
		h := NewHost(clock, "ws", Config{Speed: 1000})
		maxQ := 0.0
		for _, b := range burst {
			n := int(b%4) + 1
			if float64(n) > maxQ {
				maxQ = float64(n)
			}
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					p := h.Spawn("w", 0)
					defer p.Exit()
					_ = p.Compute(float64(b%100+1) * 10)
				}()
			}
			// Wait for all n Compute requests to be registered, then advance
			// until every one has completed. Completion happens synchronously
			// inside the RunQueue query's lazy integration, so this loop is
			// deterministic.
			for h.RunQueue() < n {
				time.Sleep(50 * time.Microsecond)
			}
			for h.RunQueue() > 0 {
				clock.Advance(time.Second)
			}
			wg.Wait()
			l1, l5, l15 := h.LoadAvg()
			for _, l := range []float64{l1, l5, l15} {
				if l < -1e-9 || l > maxQ+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
