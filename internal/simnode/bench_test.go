package simnode

import (
	"testing"
	"time"

	"autoresched/internal/vclock"
)

// BenchmarkLoadAvgQuery measures the lazy-integration cost of a load
// average query with many processes on the host.
func BenchmarkLoadAvgQuery(b *testing.B) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "bench", Config{Speed: 1e6})
	for i := 0; i < 64; i++ {
		h.Spawn("filler", 1<<20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(time.Millisecond)
		h.LoadAvg()
	}
}

// BenchmarkProcsSnapshot measures the process-table snapshot the prstat
// probe takes each monitoring cycle.
func BenchmarkProcsSnapshot(b *testing.B) {
	clock := vclock.NewManual(vclock.Epoch)
	h := NewHost(clock, "bench", Config{Speed: 1e6})
	for i := 0; i < 150; i++ {
		h.Spawn("filler", 1<<20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := h.Procs(); len(got) != 150 {
			b.Fatal("snapshot lost processes")
		}
	}
}

// BenchmarkComputeRoundTrip measures a full Compute request (enqueue, timer,
// completion) at 10000x compression.
func BenchmarkComputeRoundTrip(b *testing.B) {
	clock := vclock.Scaled(vclock.Epoch, 10000)
	h := NewHost(clock, "bench", Config{Speed: 1e6})
	p := h.Spawn("worker", 0)
	defer p.Exit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Compute(100); err != nil { // 0.1 virtual ms
			b.Fatal(err)
		}
	}
}
