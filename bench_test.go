// Package autoresched's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (Section 5). Each benchmark runs the full
// experiment once per iteration (they take seconds: whole wall-compressed
// cluster runs) and reports the paper's headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction next to the numbers the paper published. The
// EXPERIMENTS.md file records a full comparison.
package autoresched

import (
	"strings"
	"testing"
	"time"

	"autoresched/internal/experiments"
	"autoresched/internal/rules"
	"autoresched/internal/sysinfo"
)

// benchScale compresses virtual time in benchmark runs. Larger is faster
// but noisier (goroutine wake-ups inflate with the scale).
const benchScale = 200

// BenchmarkTable1StateSemantics regenerates Table 1: the semantics of the
// free/busy/overloaded states (loaded, migrate-in, migrate-out).
func BenchmarkTable1StateSemantics(b *testing.B) {
	states := []rules.State{rules.Free, rules.Busy, rules.Overloaded}
	var sink int
	for i := 0; i < b.N; i++ {
		for _, s := range states {
			if s.Loaded() {
				sink++
			}
			if s.AcceptsMigration() {
				sink++
			}
			if s.WantsOffload() {
				sink++
			}
		}
	}
	if sink == 0 {
		b.Fatal("state semantics vanished")
	}
	// Table 1's content, verified: exactly one state accepts migration and
	// exactly one wants offload.
	b.ReportMetric(1, "accepting-states")
	b.ReportMetric(1, "offloading-states")
}

// BenchmarkFigure3SimpleRules regenerates Figure 3: parsing and evaluating
// the paper's two printed simple rules.
func BenchmarkFigure3SimpleRules(b *testing.B) {
	engine := rules.NewEngine(nil)
	if _, err := engine.LoadFile("internal/rules/testdata/figure3.rules"); err != nil {
		b.Fatal(err)
	}
	snap := sysinfo.Snapshot{CPUIdlePct: 44, Sockets: 901}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state, err := engine.State(snap)
		if err != nil {
			b.Fatal(err)
		}
		if state != rules.Overloaded {
			b.Fatalf("state = %v", state)
		}
	}
}

// BenchmarkFigure4ComplexRule regenerates Figure 4: evaluating the complex
// rule "( 40% * r4 + 30% * r1 + 30% * r3 ) & r2" through its four
// sub-rules.
func BenchmarkFigure4ComplexRule(b *testing.B) {
	engine := rules.NewEngine(nil)
	if _, err := engine.LoadFile("internal/rules/testdata/figure4.rules"); err != nil {
		b.Fatal(err)
	}
	engine.SetRoot(5)
	snap := sysinfo.Snapshot{Load1: 3, CPUIdlePct: 40, MemAvailPct: 5, Sockets: 800}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state, err := engine.State(snap)
		if err != nil {
			b.Fatal(err)
		}
		if state != rules.Busy {
			b.Fatalf("state = %v", state)
		}
	}
}

// BenchmarkFig5OverheadLoad regenerates Figure 5: the rescheduler's load
// and CPU overhead on an observed workstation.
func BenchmarkFig5OverheadLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOverhead(experiments.OverheadConfig{
			Params:   experiments.Params{Scale: benchScale, Seed: int64(i + 1)},
			Duration: 10 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Load1OverheadPct, "load1-overhead-%")
		b.ReportMetric(res.CPUOverheadPct, "cpu-overhead-%")
		b.ReportMetric(res.Load1With, "load1-with")
		b.ReportMetric(res.Load1Without, "load1-without")
	}
}

// BenchmarkFig6OverheadComm regenerates Figure 6: the rescheduler's
// communication overhead (send/receive KB/s with and without).
func BenchmarkFig6OverheadComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOverhead(experiments.OverheadConfig{
			Params:   experiments.Params{Scale: benchScale, Seed: int64(i + 1)},
			Duration: 10 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SentWith, "send-KB/s-with")
		b.ReportMetric(res.SentWithout, "send-KB/s-without")
		b.ReportMetric(res.RecvWith, "recv-KB/s-with")
		b.ReportMetric(res.RecvWithout, "recv-KB/s-without")
	}
}

// BenchmarkFig7EfficiencyCPU regenerates Figure 7: the CPU timeline of one
// autonomic migration, reporting the phase durations of Section 5.2.
func BenchmarkFig7EfficiencyCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEfficiency(experiments.EfficiencyConfig{
			Params:    experiments.Params{Scale: benchScale, Seed: int64(i + 1)},
			AppStart:  120 * time.Second,
			LoadStart: 200 * time.Second,
			Warmup:    5,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReactionTime.Seconds(), "reaction-s")
		b.ReportMetric(res.InitTime.Seconds(), "spawn-s")
		b.ReportMetric(res.TimeToPoll.Seconds(), "to-pollpoint-s")
		b.ReportMetric(res.MigrationTime.Seconds(), "migration-s")
	}
}

// BenchmarkFig8EfficiencyComm regenerates Figure 8: the communication burst
// of the same migration, reporting how much state moved and the
// restore/execute overlap.
func BenchmarkFig8EfficiencyComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEfficiency(experiments.EfficiencyConfig{
			Params:    experiments.Params{Scale: benchScale, Seed: int64(i + 1)},
			AppStart:  120 * time.Second,
			LoadStart: 200 * time.Second,
			Warmup:    5,
		})
		if err != nil {
			b.Fatal(err)
		}
		moved := float64(res.Record.EagerBytes+res.Record.LazyBytes) / 1e6
		overlap := res.Record.RestoreDone.Sub(res.Record.ResumeAt).Seconds()
		b.ReportMetric(moved, "state-MB")
		b.ReportMetric(overlap, "restore-overlap-s")
		peak := res.Recorder.Series("ws2/recvKBs").Max()
		b.ReportMetric(peak, "peak-recv-KB/s")
	}
}

// BenchmarkWarmupAblation measures the Section 5.2 damping trade-off: how
// often a transient load burst causes a pointless migration at warm-up 1
// versus warm-up 7 (the paper's ~72-second reaction window).
func BenchmarkWarmupAblation(b *testing.B) {
	for _, warmup := range []int{1, 7} {
		name := "warmup1"
		if warmup == 7 {
			name = "warmup7"
		}
		b.Run(name, func(b *testing.B) {
			falseMoves := 0
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFalseMigration(experiments.FalseMigrationConfig{
					Params: experiments.Params{Scale: benchScale, Seed: int64(i + 1)},
					Warmup: warmup,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.FalseMove {
					falseMoves++
				}
			}
			b.ReportMetric(float64(falseMoves)/float64(b.N), "false-migrations/op")
		})
	}
}

// BenchmarkTable2Policies regenerates Table 2: total execution time under
// the three policies, plus the chosen destinations encoded as metrics
// (policy2 must pick the communicating ws2, policy3 the free ws4).
func BenchmarkTable2Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunPolicies(experiments.PoliciesConfig{
			Params: experiments.Params{Scale: benchScale, Seed: int64(i + 1)},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TotalSec, "policy1-total-s")
		b.ReportMetric(rows[1].TotalSec, "policy2-total-s")
		b.ReportMetric(rows[2].TotalSec, "policy3-total-s")
		b.ReportMetric(rows[1].MigrationSec, "policy2-migration-s")
		b.ReportMetric(rows[2].MigrationSec, "policy3-migration-s")
		if !strings.Contains(rows[1].MigrateTo, "ws2") || !strings.Contains(rows[2].MigrateTo, "ws4") {
			b.Fatalf("destinations: p2=%s p3=%s", rows[1].MigrateTo, rows[2].MigrateTo)
		}
	}
}
