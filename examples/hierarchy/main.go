// Hierarchy: the Section 3.2 hierarchical registry/scheduler arrangement.
//
// Two "control domains" (clusters) each run their own registry/scheduler;
// both register with an upper-level registry (the Virtual Organisation
// level). When a domain has no host fit to receive a migration, its
// registry delegates the first-fit search upward, and the process moves to
// a host in the other domain — the paper's answer to the centralised
// bottleneck.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/core"
	"autoresched/internal/registry"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
	"autoresched/internal/workload"
)

func main() {
	clock := vclock.Scaled(vclock.Epoch, 200)

	// One shared interconnect carrying both domains (a campus network).
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	domainA, err := cl.AddHosts("a", 2, simnode.Config{Speed: 1e6})
	if err != nil {
		log.Fatal(err)
	}
	domainB, err := cl.AddHosts("b", 2, simnode.Config{Speed: 1e6})
	if err != nil {
		log.Fatal(err)
	}

	// The upper-level registry knows domain B's hosts (registered there by
	// B's own runtime below).
	upper := registry.NewRegistry(registry.WithName("vo-registry"), registry.WithClock(clock))

	// Domain B: its monitors report to the upper registry as well, making
	// its free hosts visible to other domains. For the demo we simply run
	// domain B's system with the upper registry as its own (single level),
	// and chain domain A under it.
	sysB, err := core.New(core.Options{Cluster: cl, MonitorInterval: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	if err := sysB.AddNodes(domainB...); err != nil {
		log.Fatal(err)
	}
	defer sysB.Stop()
	// Mirror B's host registrations into the upper-level registry.
	go func() {
		for {
			for _, h := range sysB.Registry().Hosts() {
				_ = upper.RegisterHost(h.Name, h.Static)
				_ = upper.ReportStatus(h.Name, h.Status)
			}
			clock.Sleep(10 * time.Second)
		}
	}()

	// Domain A: both of its hosts will be busy, so its registry must
	// delegate upward. Its registry chains to the upper one via Parent.
	sysA, err := core.New(core.Options{
		Cluster:         cl,
		MonitorInterval: 10 * time.Second,
		Warmup:          3,
		Parent:          upper,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sysA.AddNodes(domainA...); err != nil {
		log.Fatal(err)
	}
	defer sysA.Stop()

	// Launch the app in domain A, then overload BOTH of A's hosts.
	tree := workload.TreeConfig{Levels: 12, Rounds: 60, Seed: 9, WorkPerNode: 150, BytesPerNode: 8}
	app, err := sysA.Launch("test_tree", "a1", tree.Schema(1e6), workload.TestTree(tree))
	if err != nil {
		log.Fatal(err)
	}
	for _, host := range domainA {
		h, _ := cl.Host(host)
		gen := workload.NewLoadGen(h, workload.LoadOptions{Workers: 3, Duty: 1.0, Period: 4 * time.Second})
		gen.Start()
		defer gen.Stop()
	}
	fmt.Println("domain A fully overloaded; waiting for the cross-domain migration ...")

	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application finished on %s after %d migration(s)\n", app.Host(), app.Proc.Migrations())
	for _, rec := range app.Proc.Records() {
		fmt.Printf("  %s -> %s (cross-domain via the upper-level registry)\n", rec.From, rec.To)
	}
	if app.Host()[0] != 'b' {
		log.Fatalf("expected the app to land in domain B, got %s", app.Host())
	}
}
