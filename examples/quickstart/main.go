// Quickstart: the smallest complete use of the rescheduling runtime.
//
// It builds a two-workstation simulated cluster, deploys the autonomic
// runtime (monitors, commanders, registry/scheduler), launches a
// migration-enabled application on ws1, overloads ws1, and watches the
// system move the application to ws2 — all in compressed virtual time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/core"
	"autoresched/internal/hpcm"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
	"autoresched/internal/workload"
)

func main() {
	// One wall second is 200 virtual seconds.
	clock := vclock.Scaled(vclock.Epoch, 200)

	// A cluster of two identical workstations on 100 Mbps Ethernet.
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	hosts, err := cl.AddHosts("ws", 2, simnode.Config{Speed: 1e6})
	if err != nil {
		log.Fatal(err)
	}

	// The autonomic runtime: a monitor and commander per host, the
	// registry/scheduler deciding with the default state-based policy.
	sys, err := core.New(core.Options{
		Cluster:         cl,
		MonitorInterval: 10 * time.Second,
		Warmup:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddNodes(hosts...); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// A migration-enabled application: the paper's test_tree benchmark.
	tree := workload.TreeConfig{
		Levels: 12, Rounds: 80, Seed: 42,
		WorkPerNode: 150, BytesPerNode: 8,
	}
	app, err := sys.Launch("test_tree", "ws1", tree.Schema(1e6), workload.TestTree(tree))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("launched %s on %s (estimated %.0fs solo)\n",
		app.Proc.Name(), app.LaunchHost(), tree.TotalWork()/1e6)

	// Overload ws1 with three always-busy tasks; the monitor will notice,
	// the registry will decide, and the commander will order the move.
	ws1, _ := cl.Host("ws1")
	busy := workload.NewLoadGen(ws1, workload.LoadOptions{Workers: 3, Duty: 1.0, Period: 4 * time.Second})
	busy.Start()
	defer busy.Stop()
	fmt.Println("overloading ws1 ...")

	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application finished on %s after %d migration(s)\n",
		app.Host(), app.Proc.Migrations())
	for _, rec := range app.Proc.Records() {
		fmt.Printf("  %s -> %s at poll-point %q: migration took %.2fs "+
			"(downtime %.2fs, %d KB state)\n",
			rec.From, rec.To, rec.Label,
			rec.MigrationTime().Seconds(), rec.Downtime().Seconds(),
			(rec.EagerBytes+rec.LazyBytes)/1024)
	}

	// The poll-point/dispatch pattern an application implements directly:
	_ = func(ctx *hpcm.Context) error {
		var progress int
		if err := ctx.Register("progress", &progress); err != nil {
			return err
		}
		for ; progress < 10; progress++ {
			if err := ctx.Compute(1000); err != nil {
				return err
			}
			if err := ctx.PollPoint(fmt.Sprintf("step-%d", progress)); err != nil {
				return err // ErrMigrated propagates; a new incarnation resumes
			}
		}
		return nil
	}
}
