// Package examples_test smoke-tests every runnable example: each must
// build, run to completion within a deadline and exit zero. The examples
// double as end-to-end integration tests of the public wiring (cluster +
// core + hpcm + registry), so a refactor that breaks their API surface
// fails here rather than in a user's copy-paste.
package examples_test

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

func TestExamplesRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("example binaries in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	// Each example finishes in 1-25 s of wall time (virtual time is
	// compressed); the deadline only has to catch hangs.
	const deadline = 90 * time.Second
	for _, name := range []string{
		"quickstart", "testtree", "policies", "hierarchy", "faulttolerance", "jacobi",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+name)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s exceeded %v:\n%s", name, deadline, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
		})
	}
}
