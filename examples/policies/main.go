// Policies: the Table 2 comparison as a runnable program. Three runs of
// the same overloaded workstation under the paper's three migration
// policies — no migration, load-only, and load+communication — printing the
// table the paper reports.
//
//	go run ./examples/policies [-scale 150]
package main

import (
	"flag"
	"fmt"
	"log"

	"autoresched/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 150, "virtual seconds per wall second")
	flag.Parse()

	fmt.Println("running the Section 5.3 policy comparison (three full runs) ...")
	rows, err := experiments.RunPolicies(experiments.PoliciesConfig{
		Params: experiments.Params{Scale: *scale, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderPolicies(rows))

	p1, p3 := rows[0], rows[2]
	if p3.TotalSec > 0 {
		fmt.Printf("\nwith the communication-aware policy the application finished in %.1f%% "+
			"of the no-migration time (the paper reports 33.5%%)\n",
			100*p3.TotalSec/p1.TotalSec)
	}
}
