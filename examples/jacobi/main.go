// Jacobi: a long-running iterative solver (2-D Jacobi relaxation, the
// classic MPI kernel) under the autonomic runtime, with both safety nets
// on: it checkpoints its grid periodically AND migrates away when its
// workstation becomes overloaded. The final residual is verified against a
// pure reference run — migration and restoration are bit-exact.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/core"
	"autoresched/internal/hpcm"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
	"autoresched/internal/workload"
)

func main() {
	clock := vclock.Scaled(vclock.Epoch, 300)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	hosts, err := cl.AddHosts("ws", 2, simnode.Config{Speed: 1e6})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.New(core.Options{
		Cluster:         cl,
		MonitorInterval: 10 * time.Second,
		Warmup:          3,
		Checkpoints:     hpcm.NewMemStore(),
		CheckpointEvery: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddNodes(hosts...); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	cfg := workload.JacobiConfig{
		N: 96, Iters: 400, PollEvery: 4, WorkPerCell: 80,
	}
	var mu sync.Mutex
	var lastIter int
	var lastRes float64
	cfg.OnResidual = func(iter int, res float64) {
		mu.Lock()
		lastIter, lastRes = iter, res
		mu.Unlock()
	}
	app, err := sys.Launch("jacobi", "ws1", cfg.Schema(1e6), workload.Jacobi(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jacobi: %dx%d grid, %d sweeps (~%.0f virtual seconds solo)\n",
		cfg.N, cfg.N, cfg.Iters, cfg.TotalWork()/1e6)

	ws1, _ := cl.Host("ws1")
	busy := workload.NewLoadGen(ws1, workload.LoadOptions{Workers: 3, Duty: 1.0, Period: 4 * time.Second})
	busy.Start()
	defer busy.Stop()
	fmt.Println("overloading ws1; the solver should move mid-run ...")

	if err := app.Wait(); err != nil {
		log.Fatal(err)
	}
	wantRes, _ := workload.JacobiReference(cfg)
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("finished on %s after %d migration(s) and %d checkpoint(s)\n",
		app.Host(), app.Proc.Migrations(), app.Proc.Checkpoints())
	fmt.Printf("final residual %.3e at iteration %d (reference %.3e)\n", lastRes, lastIter, wantRes)
	if math.Abs(lastRes-wantRes) > 1e-12 {
		log.Fatal("residual mismatch: migration corrupted the grid")
	}
	fmt.Println("residual matches the uninterrupted reference run exactly")
}
