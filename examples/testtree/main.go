// Testtree: the paper's Section 5.2 efficiency scenario as a runnable
// program — start the migration-enabled test_tree, load the workstation,
// and print the full migration timeline plus the CPU timelines of both
// workstations (Figures 7 and 8 in miniature).
//
//	go run ./examples/testtree [-scale 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"autoresched/internal/experiments"
	"autoresched/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 200, "virtual seconds per wall second")
	flag.Parse()

	fmt.Println("running the Section 5.2 efficiency experiment ...")
	res, err := experiments.RunEfficiency(experiments.EfficiencyConfig{
		Params:    experiments.Params{Scale: *scale, Seed: 1},
		AppStart:  120 * time.Second,
		LoadStart: 200 * time.Second,
		Warmup:    5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	fmt.Println("\nsampled series (10s interval):")
	fmt.Print(metrics.Table(res.Recorder.Start(),
		res.Recorder.Series("ws1/cpu"),
		res.Recorder.Series("ws2/cpu"),
		res.Recorder.Series("ws1/sentKBs"),
		res.Recorder.Series("ws2/recvKBs"),
	))
}
