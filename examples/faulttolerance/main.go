// Faulttolerance: the rescheduling-for-fault-tolerance scenario of
// Section 6 ("reschedule when the machine will shut down"). The
// application checkpoints its state periodically; its workstation crashes
// without warning (no chance to migrate); the runtime recovers it from the
// last checkpoint on a host chosen by the registry's first-fit — losing at
// most one checkpoint interval of work instead of the whole run.
//
//	go run ./examples/faulttolerance
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/core"
	"autoresched/internal/hpcm"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
	"autoresched/internal/workload"
)

func main() {
	clock := vclock.Scaled(vclock.Epoch, 300)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	hosts, err := cl.AddHosts("ws", 3, simnode.Config{Speed: 1e6})
	if err != nil {
		log.Fatal(err)
	}

	store := hpcm.NewMemStore()
	sys, err := core.New(core.Options{
		Cluster:         cl,
		MonitorInterval: 10 * time.Second,
		Checkpoints:     store,
		CheckpointEvery: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddNodes(hosts...); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	tree := workload.TreeConfig{Levels: 12, Rounds: 60, Seed: 2026, WorkPerNode: 400, BytesPerNode: 8}
	app, err := sys.Launch("test_tree", "ws1", tree.Schema(1e6), workload.TestTree(tree))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("test_tree running on ws1, checkpointing every 30 virtual seconds ...")

	// Give it time to work and checkpoint, then crash the workstation.
	for app.Proc.Checkpoints() < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("crash! killing ws1 after %d checkpoints\n", app.Proc.Checkpoints())
	app.Proc.Kill()
	if err := app.Wait(); !errors.Is(err, hpcm.ErrKilled) {
		log.Fatalf("unexpected exit: %v", err)
	}

	app2, err := sys.Recover("test_tree", "", tree.Schema(1e6), workload.TestTree(tree))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered from checkpoint onto %s (chosen by first-fit)\n", app2.Host())
	if err := app2.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run completed on %s; results identical to an uninterrupted run\n", app2.Host())
}
