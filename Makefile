# Developer entry points. `make check` is what CI (and the tier-1 verify)
# runs; `make lint` runs the static gates (gofmt, go vet, reschedvet);
# `make race` additionally race-tests the concurrency-heavy packages;
# `make ci` is the full gate (lint + build + test + race, a repeated race
# run of the simulation/experiment packages, 64-host scale, malleability
# and multi-job smokes, and the benchmark drift guard); `make bench`
# regenerates BENCH_scale.json, BENCH_livemig.json, BENCH_malleable.json,
# BENCH_multijob.json and BENCH_persist.json.

GO ?= go

# Packages with nontrivial goroutine interaction: the migration middleware,
# the autonomic runtime, the fault injector, the event sink and everything
# they lean on.
RACE_PKGS = ./internal/proto ./internal/monitor ./internal/registry \
            ./internal/commander ./internal/hpcm ./internal/core \
            ./internal/faults ./internal/metrics ./internal/simnet \
            ./internal/events ./internal/livemig ./internal/malleable \
            ./internal/jobs ./internal/scenario ./internal/persist

.PHONY: all build vet fmtcheck lint test race check ci chaos scale malleable multijob fleet bench benchguard

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt drift fails the build; the shell substitution makes the offending
# files part of the error output.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt drift in:"; echo "$$out"; exit 1; fi

# The static gates: formatting, go vet, and the project's own analyzer
# (cmd/reschedvet), which enforces the determinism and robustness
# invariants documented in DESIGN.md ("Static invariants").
lint: fmtcheck vet
	$(GO) run ./cmd/reschedvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

check: lint build test

# The full gate: everything `check` and `race` run, a repeated race-enabled
# run of the network simulation and experiment suites (flushing out
# order-dependent flakiness in the fair-share solver and the determinism
# fences), a single 64-host scale sweep as an end-to-end smoke of the
# control plane, and the benchmark drift guard.
ci: check
	$(GO) test ./internal/analysis/...
	$(MAKE) race
	$(GO) test -race -count=2 ./internal/simnet ./internal/experiments
	$(GO) run ./cmd/repro -exp scale -hosts 64 -seed 42
	$(GO) run ./cmd/repro -exp malleable -seed 42
	$(GO) run ./cmd/repro -exp multijob -seed 42
	$(GO) run ./cmd/repro -exp fleet -seed 1 -runs 25
	$(GO) run ./cmd/repro -exp fleet -seed 7 -runs 25
	$(MAKE) benchguard

# Two chaos runs with the same seed must print identical fault schedules
# and counters (the deterministic section above `timings`).
chaos: build
	$(GO) run ./cmd/repro -exp chaos -seed 42

# The 64/256/512-host sweeps under churn (deterministic outcome section per
# seed; the control-plane measurements below it are approximate).
scale: build
	$(GO) run ./cmd/repro -exp scale -seed 42

# Elastic vs migrate-only vs fixed under seeded host churn (deterministic
# resize trajectories per seed; completion times below are approximate).
malleable: build
	$(GO) run ./cmd/repro -exp malleable -seed 42

# The job-queue policy shoot-out: FIFO vs priority-preemptive vs backfill
# over 64 queued gangs under host churn (byte-deterministic per seed).
multijob: build
	$(GO) run ./cmd/repro -exp multijob -seed 42

# The generated scenario fleet: 100 seeded scenarios through the planner,
# migration model and fault machinery, with per-run report dirs under
# fleet_runs/ (byte-deterministic per seed; see the golden regression in
# internal/scenario).
fleet: build
	$(GO) run ./cmd/repro -exp fleet -seed 1 -runs 100 -rundir fleet_runs

# Scheduling microbenchmarks -> BENCH_scale.json: status-ingest throughput
# (direct vs batched), candidate selection at 512 hosts (state-indexed vs
# the seed's re-sort baseline), the 64->512 growth sweep, the zero-alloc
# multi-part send path, and one whole 64-host sweep end to end. All runs
# carry -benchmem so the reports track B/op and allocs/op alongside ns/op.
# Live-migration microbenchmarks (paged writes, dirty scans, modeled
# downtime) -> BENCH_livemig.json.
bench: build
	{ $(GO) test -run '^$$' -bench 'BenchmarkRegistryReportStatus|BenchmarkCandidate' \
	      -benchtime 1000x -benchmem ./internal/registry ; \
	  $(GO) test -run '^$$' -bench BenchmarkSendParts -benchtime 1000x -benchmem ./internal/mpi ; \
	  $(GO) test -run '^$$' -bench BenchmarkScale64 -benchtime 1x -benchmem ./internal/experiments ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_scale.json
	$(GO) test -run '^$$' -bench . -benchtime 1000x -benchmem ./internal/livemig \
	| $(GO) run ./cmd/benchjson -o BENCH_livemig.json
	$(GO) test -run '^$$' -bench BenchmarkResize -benchtime 100x -benchmem ./internal/malleable \
	| $(GO) run ./cmd/benchjson -o BENCH_malleable.json
	$(GO) test -run '^$$' -bench BenchmarkAdmission -benchtime 1000x -benchmem ./internal/jobs \
	| $(GO) run ./cmd/benchjson -o BENCH_multijob.json
	{ $(GO) test -run '^$$' -bench 'BenchmarkAppend|BenchmarkSnapshotRoundtrip' \
	      -benchtime 1000x -benchmem ./internal/persist ; \
	  $(GO) test -run '^$$' -bench BenchmarkReplayBootstrap -benchtime 10x -benchmem ./internal/registry ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_persist.json

# Drift guard: regenerate the benchmark reports and fail if any benchmark
# regressed more than 3x against the committed ones — a coarse fence
# against algorithmic regressions (and >3x downtime blowups in the live
# migration model) that survives machine-to-machine ns/op variation. The
# same fence applies to allocs/op where both sides measured it, so an
# allocation creeping back onto a zero-alloc hot path fails the gate.
benchguard: build
	{ $(GO) test -run '^$$' -bench 'BenchmarkRegistryReportStatus|BenchmarkCandidate' \
	      -benchtime 1000x -benchmem ./internal/registry ; \
	  $(GO) test -run '^$$' -bench BenchmarkSendParts -benchtime 1000x -benchmem ./internal/mpi ; \
	  $(GO) test -run '^$$' -bench BenchmarkScale64 -benchtime 1x -benchmem ./internal/experiments ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_scale.json -baseline BENCH_scale.json -max-ratio 3
	$(GO) test -run '^$$' -bench . -benchtime 1000x -benchmem ./internal/livemig \
	| $(GO) run ./cmd/benchjson -o BENCH_livemig.json -baseline BENCH_livemig.json -max-ratio 3
	$(GO) test -run '^$$' -bench BenchmarkResize -benchtime 100x -benchmem ./internal/malleable \
	| $(GO) run ./cmd/benchjson -o BENCH_malleable.json -baseline BENCH_malleable.json -max-ratio 3
	$(GO) test -run '^$$' -bench BenchmarkAdmission -benchtime 1000x -benchmem ./internal/jobs \
	| $(GO) run ./cmd/benchjson -o BENCH_multijob.json -baseline BENCH_multijob.json -max-ratio 3
	{ $(GO) test -run '^$$' -bench 'BenchmarkAppend|BenchmarkSnapshotRoundtrip' \
	      -benchtime 1000x -benchmem ./internal/persist ; \
	  $(GO) test -run '^$$' -bench BenchmarkReplayBootstrap -benchtime 10x -benchmem ./internal/registry ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_persist.json -baseline BENCH_persist.json -max-ratio 3
