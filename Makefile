# Developer entry points. `make check` is what CI (and the tier-1 verify)
# runs; `make race` additionally race-tests the concurrency-heavy packages.

GO ?= go

# Packages with nontrivial goroutine interaction: the migration middleware,
# the autonomic runtime, the fault injector and everything they lean on.
RACE_PKGS = ./internal/proto ./internal/monitor ./internal/registry \
            ./internal/commander ./internal/hpcm ./internal/core \
            ./internal/faults ./internal/metrics ./internal/simnet

.PHONY: all build vet test race check chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

check: vet build test

# Two chaos runs with the same seed must print identical fault schedules
# and counters (the deterministic section above `timings`).
chaos: build
	$(GO) run ./cmd/repro -exp chaos -seed 42
