// Command repro regenerates the paper's evaluation: every figure and table
// of Section 5 (plus the Table 1 semantics and the Figure 3/4 rule files,
// which are executable artifacts elsewhere in the repository).
//
// Usage:
//
//	repro -exp all            # everything
//	repro -exp fig5           # rescheduler overhead (load / CPU)
//	repro -exp fig6           # rescheduler overhead (communication)
//	repro -exp fig7           # efficiency timeline (CPU)
//	repro -exp fig8           # efficiency timeline (communication)
//	repro -exp table1         # system state semantics
//	repro -exp table2         # comparison of policies
//	repro -exp chaos          # seeded fault-injection survival (not in "all")
//	repro -exp scale          # 64/256/512-host sweeps under churn (not in "all")
//	repro -exp livemig        # precopy vs stop-and-copy downtime sweep
//	repro -exp malleable      # elastic vs migrate-only vs fixed under churn (not in "all")
//	repro -exp multijob       # job-queue policy shoot-out (not in "all")
//	repro -exp fleet -seed 1 -runs 100   # generated scenario fleet (not in "all")
//	repro -exp fleet -rundir fleet_runs  # also write per-run report dirs
//	repro -exp scale -hosts 64,128   # custom sweep sizes
//	repro -scale 100          # virtual-time compression factor
//	repro -exp chaos -metrics run.json   # also dump the metrics registry
//
// The chaos, scale and malleable experiments are deterministic per -seed in
// their headline sections: the chaos fault schedule, robustness counters and
// migration phase counts, the scale sweeps' completion/correctness lines,
// the malleable resize trajectories, and the migration cost model's quantile
// table are byte-identical across runs. The measured phase durations and
// completion times below those sections carry scheduling jitter (wall
// wake-up latency multiplied by the time-scale factor) and are labeled
// approximate. All three are excluded from "all" to keep that target's
// runtime bounded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"autoresched/internal/experiments"
	"autoresched/internal/metrics"
	"autoresched/internal/rules"
	"autoresched/internal/scenario"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5|fig6|fig7|fig8|table1|table2|chaos|scale|livemig|malleable|multijob|fleet|all")
	scale := flag.Float64("scale", 100, "virtual-time compression (virtual seconds per wall second)")
	seed := flag.Int64("seed", 1, "workload seed")
	runs := flag.Int("runs", 50, "fleet experiment: scenarios to generate")
	runDir := flag.String("rundir", "", "fleet experiment: directory to write per-run reports and summary.json")
	hosts := flag.String("hosts", "", "scale experiment sweep sizes, comma-separated (default 64,256,512)")
	series := flag.Bool("series", false, "also print the sampled series tables")
	csvDir := flag.String("csv", "", "directory to write the sampled series as CSV files")
	metricsPath := flag.String("metrics", "", "write the run's metrics registry (counters, gauges, histograms) as JSON to this file")
	flag.Parse()
	scaleSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "scale" {
			scaleSet = true
		}
	})

	params := experiments.Params{Scale: *scale, Seed: *seed}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	// The run-wide metrics accumulator: experiments merge their per-run
	// registries here, and -metrics snapshots it at exit.
	mreg := metrics.NewRegistry()

	if want("table1") {
		ran = true
		printTable1()
	}
	if want("fig5") || want("fig6") {
		ran = true
		res, err := experiments.RunOverhead(experiments.OverheadConfig{Params: params})
		fatal(err)
		mreg.Merge(res.Metrics)
		fmt.Print(res.Render())
		if *series {
			fmt.Println(metrics.Table(res.Recorder.Start(),
				res.Recorder.Series("ws2/load1"),
				res.Recorder.Series("ws2/cpu"),
				res.Recorder.Series("ws2/sentKBs"),
				res.Recorder.Series("ws2/recvKBs")))
		}
		writeCSV(*csvDir, "fig5_with.csv", res.Recorder,
			"ws2/load1", "ws2/load5", "ws2/cpu", "ws2/sentKBs", "ws2/recvKBs")
		writeCSV(*csvDir, "fig5_without.csv", res.WithoutRecorder,
			"ws2/load1", "ws2/load5", "ws2/cpu", "ws2/sentKBs", "ws2/recvKBs")
		fmt.Println()
	}
	if want("fig7") || want("fig8") {
		ran = true
		res, err := experiments.RunEfficiency(experiments.EfficiencyConfig{Params: params})
		fatal(err)
		fmt.Print(res.Render())
		if *series {
			fmt.Println(metrics.Table(res.Recorder.Start(),
				res.Recorder.Series("ws1/cpu"),
				res.Recorder.Series("ws2/cpu"),
				res.Recorder.Series("ws1/sentKBs"),
				res.Recorder.Series("ws2/recvKBs")))
		}
		writeCSV(*csvDir, "fig7_fig8.csv", res.Recorder,
			"ws1/cpu", "ws2/cpu", "ws1/load1", "ws2/load1",
			"ws1/sentKBs", "ws1/recvKBs", "ws2/sentKBs", "ws2/recvKBs")
		fmt.Println()
	}
	if want("table2") {
		ran = true
		rows, err := experiments.RunPolicies(experiments.PoliciesConfig{Params: params})
		fatal(err)
		fmt.Print(experiments.RenderPolicies(rows))
		fmt.Println()
	}
	if *exp == "chaos" {
		ran = true
		chaosParams := params
		if !scaleSet {
			chaosParams.Scale = 0 // let chaos pick its own (higher) default
		}
		rows, err := experiments.RunChaos(experiments.ChaosConfig{Params: chaosParams, Metrics: mreg})
		fatal(err)
		fmt.Print(experiments.RenderChaos(rows))
		fmt.Println()
		fmt.Print(experiments.RenderMigrationModel(*seed, 64))
		fmt.Println()
	}
	if *exp == "scale" {
		ran = true
		scaleParams := params
		if !scaleSet {
			scaleParams.Scale = 0 // let the scale experiment pick its own default
		}
		rows, err := experiments.RunScale(experiments.ScaleConfig{
			Params:  scaleParams,
			Hosts:   parseHosts(*hosts),
			Metrics: mreg,
		})
		fatal(err)
		fmt.Print(experiments.RenderScale(rows))
		fmt.Println()
		fmt.Print(experiments.RenderMigrationModel(*seed, 64))
		fmt.Println()
	}
	if *exp == "malleable" {
		ran = true
		mallParams := params
		if !scaleSet {
			mallParams.Scale = 0 // let the experiment pick its own (higher) default
		}
		rows, err := experiments.RunMalleable(experiments.MalleableConfig{Params: mallParams, Metrics: mreg})
		fatal(err)
		fmt.Print(experiments.RenderMalleable(rows))
		fmt.Println()
	}
	if *exp == "multijob" {
		ran = true
		rows := experiments.RunMultijob(experiments.MultijobConfig{Params: params})
		fmt.Print(experiments.RenderMultijob(rows))
		fmt.Println()
	}
	if *exp == "fleet" {
		ran = true
		results := scenario.RunFleet(scenario.DefaultSpace(), *seed, *runs)
		fmt.Print(scenario.RenderFleet(*seed, results))
		fmt.Println()
		for _, r := range results {
			mreg.Merge(r.Metrics)
		}
		if *runDir != "" {
			fatal(scenario.WriteRunDir(*runDir, *seed, results))
			fmt.Printf("wrote %d run dirs and summary.json under %s\n", len(results), *runDir)
		}
	}
	if want("livemig") {
		ran = true
		rows := experiments.RunLivemig(experiments.LivemigConfig{Metrics: mreg})
		fmt.Print(experiments.RenderLivemig(rows))
		fmt.Println()
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		fatal(err)
		fatal(mreg.WriteJSON(f))
		fatal(f.Close())
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsPath)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1() {
	var b strings.Builder
	b.WriteString("Table 1 — system state description\n")
	b.WriteString("state       loaded  migrate-in  migrate-out\n")
	for _, s := range []rules.State{rules.Free, rules.Busy, rules.Overloaded} {
		fmt.Fprintf(&b, "%-11s %-7v %-11v %v\n",
			s, s.Loaded(), s.AcceptsMigration(), s.WantsOffload())
	}
	b.WriteString("\n")
	fmt.Print(b.String())
}

// parseHosts turns "-hosts 64,256" into sweep sizes; empty keeps the
// experiment's default sweep.
func parseHosts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -hosts value %q", part))
		}
		out = append(out, n)
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// writeCSV exports named series from a recorder into dir/name (no-op when
// no -csv directory was given).
func writeCSV(dir, name string, rec *metrics.Recorder, seriesNames ...string) {
	if dir == "" || rec == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	fatal(err)
	defer f.Close()
	series := make([]*metrics.Series, 0, len(seriesNames))
	for _, n := range seriesNames {
		series = append(series, rec.Series(n))
	}
	fatal(metrics.WriteCSV(f, rec.Start(), series...))
	fmt.Printf("  wrote %s\n", filepath.Join(dir, name))
}
