// Command reschedvet runs the project's own static checks (package
// internal/analysis) over the module: determinism (no wall clocks or
// unseeded math/rand in sim paths), nil-receiver guards on metrics
// methods, discarded control-plane errors, blocking calls under mutexes,
// and dead Options fields — plus the interprocedural call-graph passes:
// allocation-free //hot:path functions, a cycle-free global lock-order
// graph, and exhaustive event/phase/payload switches.
//
// Usage:
//
//	reschedvet [-C dir] [-config file] [-checks a,b] [-v] [patterns...]
//
// Patterns default to ./... relative to the module directory. Findings
// print as file:line: [check] message; the exit status is 1 when any
// unsuppressed finding remains. Sites suppress a finding with
// //lint:allow <check> <reason> on the offending line or the line above;
// the config file (JSON, default .reschedvet.json when present) replaces
// the per-check package allowlists.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"autoresched/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "module directory to analyse")
	configPath := flag.String("config", "", "JSON config file (default: .reschedvet.json when present)")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	verbose := flag.Bool("v", false, "report suppressed-finding count and the checks run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reschedvet [flags] [patterns...]\n\nchecks:\n")
		for _, c := range analysis.Checks() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", c.Name, c.Doc)
		}
		for _, c := range analysis.ModuleChecks() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", c.Name, c.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg, err := loadConfig(*dir, *configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reschedvet:", err)
		os.Exit(2)
	}
	if *checks != "" {
		cfg.DisabledChecks = disabledFor(strings.Split(*checks, ","))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, suppressed, err := analysis.Run(*dir, patterns, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reschedvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		f.Pos.Filename = relative(*dir, f.Pos.Filename)
		fmt.Println(f)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "reschedvet: %d finding(s), %d suppressed\n", len(findings), suppressed)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// loadConfig returns the default policy overlaid with the JSON config
// file, when one is given or .reschedvet.json exists in dir.
func loadConfig(dir, path string) (analysis.Config, error) {
	cfg := analysis.DefaultConfig()
	if path == "" {
		candidate := filepath.Join(dir, ".reschedvet.json")
		if _, err := os.Stat(candidate); err != nil {
			return cfg, nil
		}
		path = candidate
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("%s: %v", path, err)
	}
	return cfg, nil
}

// disabledFor inverts an enabled-check list into the config's disabled
// list.
func disabledFor(enabled []string) []string {
	keep := make(map[string]bool, len(enabled))
	for _, name := range enabled {
		keep[strings.TrimSpace(name)] = true
	}
	var disabled []string
	for _, c := range analysis.Checks() {
		if !keep[c.Name] {
			disabled = append(disabled, c.Name)
		}
	}
	for _, c := range analysis.ModuleChecks() {
		if !keep[c.Name] {
			disabled = append(disabled, c.Name)
		}
	}
	return disabled
}

// relative shortens an absolute filename to dir-relative when possible.
func relative(dir, name string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(abs, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
