// Command reschedd runs the rescheduling runtime's entities over real
// TCP/IP with the XML protocol, the way the paper deployed them across its
// cluster: a registry/scheduler on one machine, and a monitor plus
// commander on every other machine, reading real system information from
// /proc.
//
// Registry (central host):
//
//	reschedd -role registry -listen :7070
//
// Durable registry (survives crashes without re-registration; pass the same
// directory on restart and the soft state replays from the change-log):
//
//	reschedd -role registry -listen :7070 -store /var/lib/reschedd -snapshot-every 256
//
// Monitor (every monitored host):
//
//	reschedd -role monitor -registry central:7070 -rules my.rules -interval 10s
//
// The monitor gathers from the local /proc, evaluates its rule file and
// pushes soft-state refreshes; the registry prints decisions. Process
// migration itself needs migration-enabled applications (see the examples);
// this daemon demonstrates the monitoring/registration/decision plane on
// real hosts.
//
// Either role serves observability endpoints when -metrics is set:
//
//	reschedd -role registry -listen :7070 -metrics :8081
//	curl localhost:8081/metrics          # Prometheus text exposition
//	go tool pprof localhost:8081/debug/pprof/profile
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/monitor"
	"autoresched/internal/persist"
	"autoresched/internal/proto"
	"autoresched/internal/registry"
	"autoresched/internal/rules"
	"autoresched/internal/sysinfo"
)

func main() {
	role := flag.String("role", "", "registry | monitor")
	listen := flag.String("listen", ":7070", "registry: listen address")
	policyPath := flag.String("policy", "", "registry: migration policy file (pl_* format); empty uses the state-based default")
	storeDir := flag.String("store", "", "registry: change-log directory for crash-consistent restarts; empty runs soft-state only")
	snapshotEvery := flag.Int("snapshot-every", 256, "registry: compact the change-log into a snapshot every N records (with -store)")
	regAddr := flag.String("registry", "", "monitor: registry address host:port")
	rulesPath := flag.String("rules", "", "monitor: rule file (rl_* format); empty uses built-in load/proc rules")
	interval := flag.Duration("interval", 10*time.Second, "monitor: monitoring frequency")
	procRoot := flag.String("proc", "/proc", "monitor: proc filesystem root")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :8081); empty disables")
	flag.Parse()

	mreg := metrics.NewRegistry()
	serveMetrics(*metricsAddr, mreg)

	switch *role {
	case "registry":
		runRegistry(*listen, *policyPath, *storeDir, *snapshotEvery, mreg)
	case "monitor":
		runMonitor(*regAddr, *rulesPath, *interval, *procRoot, mreg)
	default:
		fmt.Fprintln(os.Stderr, "reschedd: -role must be registry or monitor")
		flag.Usage()
		os.Exit(2)
	}
}

// serveMetrics starts the observability endpoint: Prometheus text on
// /metrics and the standard pprof handlers on /debug/pprof/. Both roles
// share it; an empty address disables it.
func serveMetrics(addr string, mreg *metrics.Registry) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := mreg.WritePrometheus(w); err != nil {
			log.Printf("reschedd: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("reschedd: metrics server: %v", err)
		}
	}()
	log.Printf("serving /metrics and /debug/pprof on %s", addr)
}

func runRegistry(listen, policyPath, storeDir string, snapshotEvery int, mreg *metrics.Registry) {
	var policy *rules.MigrationPolicy
	if policyPath != "" {
		parsed, err := rules.ParsePolicyFile(policyPath)
		if err != nil {
			log.Fatalf("reschedd: policy: %v", err)
		}
		if len(parsed) == 0 {
			log.Fatalf("reschedd: policy file %s holds no policies", policyPath)
		}
		policy = parsed[len(parsed)-1] // the last policy in the file rules
		log.Printf("using migration policy %q", policy.Name)
	}
	regOpts := []registry.Option{
		registry.WithName("registry"),
		registry.WithPolicy(policy),
		registry.WithMetrics(mreg),
		registry.WithOnEvent(func(e registry.Event) {
			log.Printf("decision: %s", e)
		}),
	}
	if storeDir != "" {
		store, err := persist.OpenFileStore(storeDir, persist.FileConfig{})
		if err != nil {
			log.Fatalf("reschedd: store: %v", err)
		}
		defer store.Close()
		regOpts = append(regOpts,
			registry.WithStore(store),
			registry.WithSnapshotEvery(snapshotEvery))
		log.Printf("durable registry: change-log in %s (snapshot every %d records, epoch %d)",
			storeDir, snapshotEvery, store.Epoch())
	}
	// Pre-create the decision-latency histogram so /metrics serves it
	// (empty) before the first placement.
	mreg.Histogram(registry.MetricDecideSeconds)
	reg := registry.NewRegistry(regOpts...)
	srv, err := proto.NewServer("registry", listen, loggingHandler(reg.Handler()))
	if err != nil {
		log.Fatalf("reschedd: listen: %v", err)
	}
	defer srv.Close()
	log.Printf("registry/scheduler listening on %s", srv.Addr())

	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-tick.C:
			for _, h := range reg.Hosts() {
				log.Printf("  host %-16s state=%-11s load1=%.2f procs=%d last-seen=%s",
					h.Name, h.State, h.Status.Load1, h.Status.NumProcs,
					h.LastSeen.Format(time.TimeOnly))
			}
		case <-sig:
			log.Print("registry shutting down")
			return
		}
	}
}

func loggingHandler(next proto.Handler) proto.Handler {
	return func(m *proto.Message) (*proto.Message, error) {
		if m.Type != proto.TypeStatus {
			log.Printf("<- %s from %s", m.Type, m.From)
		}
		return next(m)
	}
}

// clientReporter adapts a proto client to the monitor's Reporter.
type clientReporter struct {
	cli *proto.Client
}

func (c *clientReporter) RegisterHost(host string, static proto.StaticInfo) error {
	_, err := c.cli.Call(&proto.Message{Type: proto.TypeRegister, Static: &static})
	return err
}

func (c *clientReporter) ReportStatus(host string, status proto.Status) error {
	_, err := c.cli.Call(&proto.Message{Type: proto.TypeStatus, Status: &status})
	return err
}

func (c *clientReporter) UnregisterHost(host string) error {
	_, err := c.cli.Call(&proto.Message{Type: proto.TypeUnregister})
	return err
}

func runMonitor(regAddr, rulesPath string, interval time.Duration, procRoot string, mreg *metrics.Registry) {
	if regAddr == "" {
		log.Fatal("reschedd: -registry is required for the monitor role")
	}
	host, _ := os.Hostname()
	cli, err := proto.Dial(host, regAddr)
	if err != nil {
		log.Fatalf("reschedd: dial registry: %v", err)
	}
	defer cli.Close()

	engine := rules.NewEngine(nil)
	if rulesPath != "" {
		if _, err := engine.LoadFile(rulesPath); err != nil {
			log.Fatalf("reschedd: rules: %v", err)
		}
	} else {
		for _, r := range []*rules.Rule{
			{Number: 1, Name: "loadAverage", Type: rules.Simple, Script: "loadAvg.sh",
				Param: "1", Operator: rules.OpGreater, Busy: 1, OverLd: 2},
			{Number: 2, Name: "numProcs", Type: rules.Simple, Script: "numProcs.sh",
				Operator: rules.OpGreater, Busy: 400, OverLd: 600},
		} {
			if err := engine.Add(r); err != nil {
				log.Fatalf("reschedd: rules: %v", err)
			}
		}
	}

	// Pre-create the cycle-latency histogram so /metrics serves it (empty)
	// before the first monitoring cycle.
	mreg.Histogram(monitor.MetricCycleSeconds)
	mon, err := monitor.NewMonitor(host, sysinfo.NewProcSource(procRoot),
		monitor.WithEngine(engine),
		monitor.WithReporter(&clientReporter{cli: cli}),
		monitor.WithDefaultFrequency(interval),
		monitor.WithMetrics(mreg),
	)
	if err != nil {
		log.Fatalf("reschedd: monitor: %v", err)
	}
	if err := mon.Start(); err != nil {
		log.Fatalf("reschedd: start: %v", err)
	}
	log.Printf("monitor on %s reporting to %s every %s", host, regAddr, interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	mon.Stop()
	log.Print("monitor shutting down")
}
