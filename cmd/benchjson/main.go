// Command benchjson converts `go test -bench` text output (on stdin) into a
// JSON benchmark report, deriving the scale claims the suite exists to
// check: the indexed-vs-resort candidate-selection speedup at 512 hosts and
// the growth of selection cost from 64 to 512 hosts.
//
// Usage:
//
//	go test -bench 'Candidate|ReportStatus|Scale64' ./... | benchjson -o BENCH_scale.json
//
// With -baseline it also guards against drift: any benchmark present in
// both reports whose ns/op regressed by more than -max-ratio fails the run
// (exit 1). Absolute ns/op varies across machines, so the guard is a
// coarse 3x fence against algorithmic regressions, not a perf SLO. When
// both sides carry -benchmem columns the same fence applies to allocs/op
// (with one object of slack, so 0 -> 1 noise cannot trip it): an
// allocation sneaking back onto a zero-alloc hot path is a regression the
// ns/op fence would miss on a fast machine.
//
//	... | benchjson -o BENCH_scale.json -baseline BENCH_scale.json -max-ratio 3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. BytesPerOp and AllocsPerOp are
// pointers to keep "not measured" (no -benchmem columns) distinct from a
// measured zero — the zero-alloc hot paths report a meaningful 0.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Derived holds the report's headline ratios (zero when the inputs are
// missing from the run).
type Derived struct {
	// Candidate512Speedup is resort ns/op divided by indexed ns/op: how
	// much faster the state-indexed registry selects a destination among
	// 512 hosts than the seed's rebuild-sort-scan baseline.
	Candidate512Speedup float64 `json:"candidate512_speedup,omitempty"`
	// CandidateGrowth64To512 is ns/op at 512 hosts divided by ns/op at 64
	// hosts; values near 1 (and far below 8, the host-count ratio) mean
	// selection cost grows sub-linearly in cluster size.
	CandidateGrowth64To512 float64 `json:"candidate_growth_64_to_512,omitempty"`
}

type report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	Derived    Derived     `json:"derived"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op`)
	memCols   = regexp.MustCompile(`(\d+) B/op\s+(\d+) allocs/op`)
)

func main() {
	out := flag.String("o", "BENCH_scale.json", "output file")
	baseline := flag.String("baseline", "", "prior report to compare against; regressions beyond -max-ratio fail the run")
	maxRatio := flag.Float64("max-ratio", 3, "maximum allowed new/old ns/op ratio per benchmark")
	flag.Parse()

	var rep report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		bench := Benchmark{Name: trimProcs(m[1]), Iterations: iters, NsPerOp: ns}
		if mm := memCols.FindStringSubmatch(sc.Text()); mm != nil {
			bytesOp, _ := strconv.ParseInt(mm[1], 10, 64)
			allocsOp, _ := strconv.ParseInt(mm[2], 10, 64)
			bench.BytesPerOp, bench.AllocsPerOp = &bytesOp, &allocsOp
		}
		rep.Benchmarks = append(rep.Benchmarks, bench)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	rep.Derived = derive(rep.Benchmarks)

	var drift []string
	if *baseline != "" {
		drift = checkDrift(*baseline, rep.Benchmarks, *maxRatio)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	fatal(os.WriteFile(*out, append(data, '\n'), 0o644))
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	if rep.Derived.Candidate512Speedup > 0 {
		fmt.Printf("candidate512 speedup (resort/indexed): %.1fx\n", rep.Derived.Candidate512Speedup)
	}
	if rep.Derived.CandidateGrowth64To512 > 0 {
		fmt.Printf("candidate growth 64->512 hosts: %.2fx (8x hosts)\n", rep.Derived.CandidateGrowth64To512)
	}
	if len(drift) > 0 {
		for _, line := range drift {
			fmt.Fprintln(os.Stderr, "benchjson: DRIFT:", line)
		}
		os.Exit(1)
	}
}

// checkDrift compares the new results against a prior report and returns a
// description of every benchmark that regressed past maxRatio. A missing or
// unreadable baseline is fatal (a drift guard that silently skips isn't
// one); benchmarks present on only one side are ignored, so adding or
// renaming benchmarks never trips it.
func checkDrift(path string, benchmarks []Benchmark, maxRatio float64) []string {
	data, err := os.ReadFile(path)
	fatal(err)
	var old report
	fatal(json.Unmarshal(data, &old))
	oldBench := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBench[b.Name] = b
	}
	var drift []string
	for _, b := range benchmarks {
		prev, ok := oldBench[b.Name]
		if !ok {
			continue
		}
		if prev.NsPerOp > 0 {
			if ratio := b.NsPerOp / prev.NsPerOp; ratio > maxRatio {
				drift = append(drift, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.1fx > %.1fx)",
					b.Name, b.NsPerOp, prev.NsPerOp, ratio, maxRatio))
			}
		}
		// Allocation fence, only when both sides measured: one object of
		// slack on top of the ratio keeps 0 -> 1 measurement noise out.
		if b.AllocsPerOp != nil && prev.AllocsPerOp != nil {
			if limit := int64(maxRatio*float64(*prev.AllocsPerOp)) + 1; *b.AllocsPerOp > limit {
				drift = append(drift, fmt.Sprintf("%s: %d allocs/op vs baseline %d allocs/op (limit %d)",
					b.Name, *b.AllocsPerOp, *prev.AllocsPerOp, limit))
			}
		}
	}
	return drift
}

// trimProcs drops the trailing -N GOMAXPROCS suffix Go appends to names.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func derive(benchmarks []Benchmark) Derived {
	ns := func(name string) float64 {
		for _, b := range benchmarks {
			if b.Name == name {
				return b.NsPerOp
			}
		}
		return 0
	}
	var d Derived
	indexed := ns("BenchmarkCandidate512/indexed")
	resort := ns("BenchmarkCandidate512/resort")
	if indexed > 0 && resort > 0 {
		d.Candidate512Speedup = resort / indexed
	}
	h64 := ns("BenchmarkCandidate/hosts64")
	h512 := ns("BenchmarkCandidate/hosts512")
	if h64 > 0 && h512 > 0 {
		d.CandidateGrowth64To512 = h512 / h64
	}
	return d
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
