// Command ruleval loads a rule file in the paper's rl_* format (Figures 3
// and 4) and evaluates it, either against system information supplied on
// the command line or against the local machine's /proc filesystem.
//
// Usage:
//
//	ruleval -rules figure3.rules -idle 44 -sockets 800
//	ruleval -rules figure4.rules -proc        # read the local /proc
package main

import (
	"flag"
	"fmt"
	"os"

	"autoresched/internal/rules"
	"autoresched/internal/sysinfo"
)

func main() {
	rulesPath := flag.String("rules", "", "rule file (rl_* format)")
	useProc := flag.Bool("proc", false, "gather from the local /proc instead of flags")
	root := flag.Int("root", 0, "rule number deciding the state (0 = worst of all rules)")

	idle := flag.Float64("idle", 100, "CPU idle percentage")
	load1 := flag.Float64("load1", 0, "1-minute load average")
	load5 := flag.Float64("load5", 0, "5-minute load average")
	procs := flag.Int("procs", 0, "number of processes")
	sockets := flag.Int("sockets", 0, "established sockets")
	memAvail := flag.Float64("memavail", 100, "available memory percentage")
	netIn := flag.Float64("netin", 0, "incoming flow MB/s")
	netOut := flag.Float64("netout", 0, "outgoing flow MB/s")
	flag.Parse()

	if *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "ruleval: -rules is required")
		flag.Usage()
		os.Exit(2)
	}
	engine := rules.NewEngine(nil)
	n, err := engine.LoadFile(*rulesPath)
	fatal(err)
	engine.SetRoot(*root)

	var snap sysinfo.Snapshot
	if *useProc {
		sensor := sysinfo.NewSensor(sysinfo.NewProcSource("/proc"))
		snap, err = sensor.Gather()
		fatal(err)
	} else {
		snap = sysinfo.Snapshot{
			CPUIdlePct:  *idle,
			CPUUtilPct:  100 - *idle,
			Load1:       *load1,
			Load5:       *load5,
			NumProcs:    *procs,
			Sockets:     *sockets,
			MemAvailPct: *memAvail,
			NetRecvBps:  *netIn * 1e6,
			NetSentBps:  *netOut * 1e6,
		}
	}

	fmt.Printf("loaded %d rules from %s\n", n, *rulesPath)
	for _, r := range engine.Rules() {
		grade, err := engine.EvalRule(r.Number, snap)
		if err != nil {
			fmt.Printf("  rule %d (%s): error: %v\n", r.Number, r.Name, err)
			continue
		}
		fmt.Printf("  rule %d (%-16s %s): grade %.2f => %s\n",
			r.Number, r.Name, r.Type, float64(grade), grade.State())
	}
	state, err := engine.State(snap)
	fatal(err)
	fmt.Printf("host state: %s\n", state)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ruleval:", err)
		os.Exit(1)
	}
}
