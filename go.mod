module autoresched

go 1.22
